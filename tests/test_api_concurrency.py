"""Concurrency and job-lifecycle tests for the REST server.

The experiment endpoint is asynchronous: ``POST /experiments`` enqueues and
returns 202 immediately; a worker pool executes jobs; KB appends from all
workers are funnelled through one writer thread.  These tests cover the
lifecycle (queued/running/done/failed/cancelled), concurrent submits,
determinism versus direct synchronous runs, and KB consistency under
parallel workers.
"""

import threading

import pytest

from repro.api import SmartMLClient, SmartMLServer
from repro.core import SmartML, SmartMLConfig
from repro.data.io import parse_csv_text
from repro.exceptions import SmartMLError

CSV = "x,y,label\n" + "\n".join(
    f"{i % 5},{(i * 2) % 7},{'a' if i % 2 else 'b'}" for i in range(40)
)

# Deterministic, evaluation-count-budgeted config so async results can be
# compared bit-for-bit against direct SmartML.run calls.
FAST_CONFIG = {
    "time_budget_s": None,
    "max_evals_per_algorithm": 2,
    "n_folds": 2,
    "fallback_portfolio": ["knn", "rpart"],
    "n_algorithms": 2,
    "update_kb": False,
    "seed": 11,
}


@pytest.fixture()
def server():
    server = SmartMLServer(SmartML())
    server.serve_background()
    yield server
    server.shutdown()


@pytest.fixture()
def pooled_server():
    server = SmartMLServer(SmartML(), workers=2)
    server.serve_background()
    yield server
    server.shutdown()


def test_parallel_uploads_get_distinct_ids(server):
    client = SmartMLClient(port=server.port)
    results = []
    errors = []

    def upload(tag):
        try:
            results.append(client.upload_csv(CSV, target="label", name=f"d{tag}"))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=upload, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors
    ids = [r["dataset_id"] for r in results]
    assert len(set(ids)) == 8  # no id collisions under concurrent uploads
    listing = client.list_datasets()
    assert len(listing["datasets"]) == 8


def test_parallel_reads_while_uploading(server):
    client = SmartMLClient(port=server.port)
    stop = threading.Event()
    errors = []

    def reader():
        while not stop.is_set():
            try:
                client.health()
                client.kb_stats()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
                return

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        for i in range(5):
            client.upload_csv(CSV, target="label", name=f"r{i}")
    finally:
        stop.set()
        thread.join()
    assert not errors


# --------------------------------------------------------- job lifecycle


def test_submit_does_not_block(server):
    client = SmartMLClient(port=server.port)
    info = client.upload_csv(CSV, target="label", name="async")
    job = client.submit_experiment(info["dataset_id"], FAST_CONFIG)
    # 202 semantics: the job comes back before it finished.
    assert job["status"] in ("queued", "running")
    assert job["result"] is None if "result" in job else True
    # The server keeps answering while the job runs.
    assert client.health()["status"] == "ok"
    result = client.wait_experiment(job["job_id"], timeout=60)
    assert result["best_algorithm"] in ("knn", "rpart")


def test_status_transitions_and_phase_progress(server):
    client = SmartMLClient(port=server.port)
    info = client.upload_csv(CSV, target="label", name="phases")
    job = client.submit_experiment(info["dataset_id"], FAST_CONFIG)
    client.wait_experiment(job["job_id"], timeout=60)
    detail = client.get_experiment(job["job_id"])
    assert detail["status"] == "done"
    assert detail["submitted_at"] <= detail["started_at"] <= detail["finished_at"]
    assert detail["run_seconds"] >= 0.0
    assert detail["progress"]["phase"] is None
    assert detail["progress"]["phases_done"] == [
        "validation",
        "preprocessing",
        "metafeatures",
        "algorithm_selection",
        "hyperparameter_tuning",
        "computing_output",
        "kb_update",
    ]
    assert detail["result"]["best_algorithm"] in ("knn", "rpart")


def test_concurrent_submits_distinct_jobs_all_complete(pooled_server):
    client = SmartMLClient(port=pooled_server.port)
    info = client.upload_csv(CSV, target="label", name="burst")
    jobs, errors = [], []

    def submit():
        try:
            jobs.append(client.submit_experiment(info["dataset_id"], FAST_CONFIG))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=submit) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len({j["job_id"] for j in jobs}) == 6
    results = [client.wait_experiment(j["job_id"], timeout=120) for j in jobs]
    # Same dataset, same deterministic config: every job must agree.
    first = results[0]
    for result in results[1:]:
        assert result["best_algorithm"] == first["best_algorithm"]
        assert result["best_config"] == first["best_config"]
        assert result["validation_accuracy"] == first["validation_accuracy"]


def test_async_result_matches_synchronous_run(pooled_server):
    client = SmartMLClient(port=pooled_server.port)
    info = client.upload_csv(CSV, target="label", name="sync-twin")
    job = client.submit_experiment(info["dataset_id"], FAST_CONFIG)
    async_result = client.wait_experiment(job["job_id"], timeout=60)

    dataset = parse_csv_text(CSV, target="label", name="sync-twin")
    sync_result = SmartML().run(dataset, SmartMLConfig.from_dict(FAST_CONFIG)).to_dict()
    assert async_result["best_algorithm"] == sync_result["best_algorithm"]
    assert async_result["best_config"] == sync_result["best_config"]
    assert async_result["validation_accuracy"] == sync_result["validation_accuracy"]
    sync_by_algo = {c["algorithm"]: c for c in sync_result["candidates"]}
    for candidate in async_result["candidates"]:
        twin = sync_by_algo[candidate["algorithm"]]
        assert candidate["cv_error"] == twin["cv_error"]
        assert candidate["n_config_evals"] == twin["n_config_evals"]


def test_failed_job_surfaces_error(server):
    client = SmartMLClient(port=server.port)
    info = client.upload_csv(CSV, target="label", name="doomed")
    # Passes config validation but explodes inside the pipeline.
    bad = dict(FAST_CONFIG, fallback_portfolio=["no_such_algorithm"], n_algorithms=1)
    job = client.submit_experiment(info["dataset_id"], bad)
    with pytest.raises(SmartMLError, match="failed"):
        client.wait_experiment(job["job_id"], timeout=60)
    detail = client.get_experiment(job["job_id"])
    assert detail["status"] == "failed"
    assert "no_such_algorithm" in detail["error"]
    # A failed job does not poison the worker: the next job succeeds.
    ok = client.submit_experiment(info["dataset_id"], FAST_CONFIG)
    assert client.wait_experiment(ok["job_id"], timeout=60)["best_algorithm"]


def test_invalid_submissions_rejected_before_enqueue(server):
    client = SmartMLClient(port=server.port)
    with pytest.raises(SmartMLError, match="dataset_id"):
        client.submit_experiment(424242, FAST_CONFIG)
    info = client.upload_csv(CSV, target="label", name="precheck")
    with pytest.raises(SmartMLError, match="unknown config keys"):
        client.submit_experiment(info["dataset_id"], {"mystery_option": 1})
    assert client.list_experiments()["jobs"] == []  # nothing was enqueued


def test_unknown_job_is_404(server):
    client = SmartMLClient(port=server.port)
    with pytest.raises(SmartMLError, match="404"):
        client.get_experiment(999)
    with pytest.raises(SmartMLError, match="404"):
        client.cancel_experiment(999)


def test_kb_consistent_under_parallel_workers(pooled_server):
    client = SmartMLClient(port=pooled_server.port)
    info = client.upload_csv(CSV, target="label", name="kbload")
    config = dict(FAST_CONFIG, update_kb=True)
    jobs = [client.submit_experiment(info["dataset_id"], config) for _ in range(5)]
    results = [client.wait_experiment(j["job_id"], timeout=120) for j in jobs]

    stats = client.kb_stats()
    assert stats["datasets"] == 5
    assert stats["runs"] == 5 * FAST_CONFIG["n_algorithms"]
    # Every job landed its own dataset row, and each run row references an
    # existing dataset — no interleaved/torn batches from the writer thread.
    ids = [r["kb_dataset_id"] for r in results]
    assert len(set(ids)) == 5
    kb = pooled_server.smartml.kb
    dataset_ids = {record_id for record_id, _ in kb.store.scan("datasets")}
    for _, run in kb.store.scan("runs"):
        assert run["dataset_id"] in dataset_ids
    per_dataset = {
        ds_id: sum(1 for _, r in kb.store.scan("runs") if r["dataset_id"] == ds_id)
        for ds_id in dataset_ids
    }
    assert all(n == FAST_CONFIG["n_algorithms"] for n in per_dataset.values())


# ------------------------------------------- deterministic lifecycle (stub)


class _StubDataset:
    name = "stub"


class _BlockingSmartML:
    """Stands in for SmartML: runs block until released, then succeed."""

    def __init__(self):
        self.release = threading.Event()
        self.kb = None
        self.ran: list[int] = []
        self._lock = threading.Lock()

    def run(self, dataset, config, on_phase=None, kb_sink=None):
        self.release.wait(timeout=30)
        with self._lock:
            self.ran.append(config.seed)

        class _Result:
            def to_dict(self):
                return {"seed": config.seed}

        return _Result()


def _fast_payload(seed=0):
    return {
        "time_budget_s": None,
        "max_evals_per_algorithm": 1,
        "seed": seed,
    }


def test_cancel_queued_job_never_runs():
    from repro.api import JobManager, JobStateError

    stub = _BlockingSmartML()
    manager = JobManager(stub, workers=1)
    try:
        first = manager.submit(_StubDataset(), 1, _fast_payload(seed=1))
        second = manager.submit(_StubDataset(), 1, _fast_payload(seed=2))
        third = manager.submit(_StubDataset(), 1, _fast_payload(seed=3))
        # Worker 1 is parked inside job 1; job 3 is still queued.
        assert manager.get(third.job_id).status == "queued"
        cancelled = manager.cancel(third.job_id)
        assert cancelled.status == "cancelled"
        assert cancelled.finished_at is not None
        # Cancelling again (or cancelling a non-queued job) conflicts.
        with pytest.raises(JobStateError):
            manager.cancel(third.job_id)
        stub.release.set()
        assert manager.wait(first.job_id, timeout=30).status == "done"
        assert manager.wait(second.job_id, timeout=30).status == "done"
        assert manager.wait(third.job_id, timeout=30).status == "cancelled"
        # The cancelled job's config never reached the pipeline.
        assert sorted(stub.ran) == [1, 2]
    finally:
        stub.release.set()
        manager.shutdown()


def test_jobs_run_in_submission_order_with_one_worker():
    from repro.api import JobManager

    stub = _BlockingSmartML()
    stub.release.set()  # no blocking: measure pure ordering
    manager = JobManager(stub, workers=1)
    try:
        jobs = [manager.submit(_StubDataset(), 1, _fast_payload(seed=i)) for i in range(5)]
        for job in jobs:
            manager.wait(job.job_id, timeout=30)
        assert stub.ran == [0, 1, 2, 3, 4]
    finally:
        manager.shutdown()


def test_shutdown_cancels_unstarted_jobs():
    from repro.api import JobManager, JobStateError

    stub = _BlockingSmartML()
    manager = JobManager(stub, workers=1)
    running = manager.submit(_StubDataset(), 1, _fast_payload(seed=1))
    queued = manager.submit(_StubDataset(), 1, _fast_payload(seed=2))
    stub.release.set()
    manager.shutdown()
    assert manager.get(running.job_id).status in ("done", "cancelled")
    assert manager.get(queued.job_id).status in ("done", "cancelled")
    with pytest.raises(JobStateError, match="shutting down"):
        manager.submit(_StubDataset(), 1, _fast_payload(seed=3))


def test_server_restart_frees_port():
    first = SmartMLServer(SmartML())
    first.serve_background()
    port = first.port
    first.shutdown()
    # Rebinding the same port must succeed after shutdown.
    second = SmartMLServer(SmartML(), port=port)
    second.serve_background()
    try:
        assert SmartMLClient(port=port).health()["status"] == "ok"
    finally:
        second.shutdown()
