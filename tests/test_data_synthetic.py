"""Unit + property tests for the synthetic dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import SyntheticSpec, make_dataset
from repro.exceptions import ConfigurationError


def test_shape_matches_spec():
    spec = SyntheticSpec(name="s", n_instances=50, n_features=7, n_classes=3, seed=1)
    ds = make_dataset(spec)
    assert ds.n_instances == 50
    assert ds.n_features == 7
    assert ds.n_classes == 3


def test_determinism_same_seed():
    spec = SyntheticSpec(name="s", n_instances=40, n_features=5, n_classes=2, seed=9)
    a, b = make_dataset(spec), make_dataset(spec)
    assert np.array_equal(a.X, b.X, equal_nan=True)
    assert np.array_equal(a.y, b.y)


def test_different_seeds_differ():
    base = dict(name="s", n_instances=40, n_features=5, n_classes=2)
    a = make_dataset(SyntheticSpec(**base, seed=1))
    b = make_dataset(SyntheticSpec(**base, seed=2))
    assert not np.array_equal(a.X, b.X)


def test_every_class_present_at_least_twice():
    spec = SyntheticSpec(
        name="s", n_instances=60, n_features=4, n_classes=6, imbalance=0.3, seed=3
    )
    ds = make_dataset(spec)
    assert (ds.class_counts() >= 2).all()


def test_categorical_columns_marked_and_coded():
    spec = SyntheticSpec(
        name="s", n_instances=80, n_features=6, n_classes=2, n_categorical=3, seed=4
    )
    ds = make_dataset(spec)
    assert int(ds.categorical_mask.sum()) == 3
    for j in ds.categorical_indices:
        col = ds.X[:, j]
        col = col[~np.isnan(col)]
        assert np.allclose(col, np.round(col))


def test_missing_ratio_applied_but_no_empty_rows():
    spec = SyntheticSpec(
        name="s", n_instances=70, n_features=5, n_classes=2,
        missing_ratio=0.2, seed=5,
    )
    ds = make_dataset(spec)
    assert 0.05 < ds.missing_ratio() < 0.4
    assert not np.isnan(ds.X).all(axis=1).any()


def test_label_noise_lowers_separability():
    clean = make_dataset(SyntheticSpec(
        name="c", n_instances=300, n_features=4, n_classes=2,
        class_sep=3.0, label_noise=0.0, seed=6))
    noisy = make_dataset(SyntheticSpec(
        name="n", n_instances=300, n_features=4, n_classes=2,
        class_sep=3.0, label_noise=0.45, seed=6))
    # Centroid distance between class means should shrink under label noise.
    def sep(ds):
        mu0 = ds.X[ds.y == 0].mean(axis=0)
        mu1 = ds.X[ds.y == 1].mean(axis=0)
        return np.linalg.norm(mu0 - mu1)
    assert sep(noisy) < sep(clean)


def test_skew_increases_marginal_skewness():
    from scipy import stats
    plain = make_dataset(SyntheticSpec(
        name="p", n_instances=400, n_features=4, n_classes=2, skew=0.0, seed=8))
    skewed = make_dataset(SyntheticSpec(
        name="k", n_instances=400, n_features=4, n_classes=2, skew=1.2, seed=8))
    assert np.abs(stats.skew(skewed.X, axis=0)).max() > np.abs(
        stats.skew(plain.X, axis=0)
    ).max()


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(n_instances=1, n_classes=2),
        dict(n_classes=1),
        dict(n_features=0),
        dict(n_categorical=99),
        dict(label_noise=1.0),
        dict(imbalance=0.0),
        dict(missing_ratio=1.0),
    ],
)
def test_invalid_specs_rejected(kwargs):
    base = dict(name="bad", n_instances=30, n_features=4, n_classes=2)
    base.update(kwargs)
    with pytest.raises(ConfigurationError):
        SyntheticSpec(**base)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=10, max_value=120),
    d=st.integers(min_value=1, max_value=12),
    k=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_generated_datasets_are_valid(n, d, k, seed):
    if n < 2 * k:
        n = 2 * k
    ds = make_dataset(SyntheticSpec(name="p", n_instances=n, n_features=d, n_classes=k, seed=seed))
    assert ds.n_instances == n
    assert ds.n_features == d
    assert set(np.unique(ds.y)) <= set(range(k))
    assert np.isfinite(ds.X).all()
