"""Job-journal unit tests: framing, replay, corruption, compaction.

The journal's contract is that the *valid frame prefix* is always
recoverable, whatever garbage a crash leaves after it — and that a
corrupt tail is dropped **loudly** (a warning naming byte counts), then
physically repaired so the next writer appends onto clean frames.
"""

import logging
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.journal import (
    JOURNAL_FORMAT,
    JOURNAL_MAGIC,
    JobJournal,
)
from repro.kb.snapshots import frame_header_size, iter_frames
from repro.testing import JournalCrashPlan, count_journal_frames


def _records(n: int) -> list[dict]:
    out = []
    for i in range(1, n + 1):
        out.append(
            {"t": "submitted", "job": i, "dataset_id": i, "dataset_name": f"ds-{i}",
             "config": {"seed": i}, "at": 100.0 + i}
        )
        out.append({"t": "started", "job": i, "attempt": 1, "at": 200.0 + i})
        out.append({"t": "done", "job": i, "result": {"acc": 0.5 + i / 10},
                    "phases_done": ["preprocessing", "tuning"], "at": 300.0 + i})
    return out


def _write(path, records):
    with JobJournal(path) as journal:
        for record in records:
            journal.append(record)
    return path


# --------------------------------------------------------------- round trip
def test_replay_restores_terminal_jobs(tmp_path):
    path = _write(tmp_path / "jobs.wal", _records(3))
    journal = JobJournal(path)
    recovery = journal.recovery
    assert recovery.max_job_id == 3
    assert [s.job_id for s in recovery.terminal_jobs()] == [1, 2, 3]
    assert recovery.pending_jobs() == []
    state = recovery.jobs[2]
    assert state.status == "done"
    assert state.result == {"acc": 0.7}
    assert state.phases_done == ["preprocessing", "tuning"]
    assert state.config == {"seed": 2}
    journal.close()


def test_replay_requeues_unfinished_jobs_in_submission_order(tmp_path):
    records = _records(1)  # job 1 terminal
    records += [
        {"t": "submitted", "job": 3, "dataset_id": 3, "dataset_name": "late",
         "config": {}, "at": 1.0},
        {"t": "submitted", "job": 2, "dataset_id": 2, "dataset_name": "early",
         "config": {}, "at": 1.0},
        {"t": "started", "job": 2, "attempt": 1, "at": 2.0},
    ]
    path = _write(tmp_path / "jobs.wal", records)
    with JobJournal(path) as journal:
        pending = journal.recovery.pending_jobs()
    assert [s.job_id for s in pending] == [2, 3]
    assert pending[0].attempt == 1  # was running at crash time
    assert pending[1].attempt == 0  # never started


def test_commit_intents_survive_replay(tmp_path):
    records = [
        {"t": "submitted", "job": 1, "dataset_id": 1, "dataset_name": "d",
         "config": {}, "at": 1.0},
        {"t": "started", "job": 1, "attempt": 1, "at": 2.0},
        {"t": "kb_commit", "job": 1, "kb_dataset_id": 7, "n_rows": 3},
        {"t": "registry_commit", "job": 1, "model_id": "m", "version": 2},
    ]
    path = _write(tmp_path / "jobs.wal", records)
    with JobJournal(path) as journal:
        state = journal.recovery.jobs[1]
    assert state.kb_commit == {"dataset_id": 7, "n_rows": 3}
    assert state.registry_commit == {"model_id": "m", "version": 2}
    assert not state.terminal


def test_unknown_record_types_are_skipped(tmp_path):
    records = [
        {"t": "submitted", "job": 1, "dataset_id": 1, "dataset_name": "d",
         "config": {}, "at": 1.0},
        {"t": "future-extension", "job": 1, "payload": "whatever"},
        {"t": "done", "job": 1, "result": {}, "phases_done": [], "at": 2.0},
    ]
    path = _write(tmp_path / "jobs.wal", records)
    with JobJournal(path) as journal:
        assert journal.recovery.jobs[1].status == "done"


# --------------------------------------------------------------- corruption
def test_truncated_tail_is_dropped_loudly_and_repaired(tmp_path, caplog):
    path = _write(tmp_path / "jobs.wal", _records(2))
    raw = path.read_bytes()
    # Tear the last frame: keep everything but its final 5 bytes.
    path.write_bytes(raw[:-5])
    with caplog.at_level(logging.WARNING, logger="repro.api.journal"):
        journal = JobJournal(path)
    assert journal.dropped_bytes > 0
    assert any("dropping" in r.message for r in caplog.records)
    # Job 2's done frame was the casualty: it comes back pending.
    assert journal.recovery.jobs[1].status == "done"
    assert not journal.recovery.jobs[2].terminal
    # The file was physically repaired: a fresh open is clean.
    journal.close()
    with caplog.at_level(logging.WARNING, logger="repro.api.journal"):
        caplog.clear()
        clean = JobJournal(path)
    assert clean.dropped_bytes == 0
    assert not caplog.records
    clean.close()


def test_bit_flip_invalidates_frame_and_everything_after(tmp_path, caplog):
    path = _write(tmp_path / "jobs.wal", _records(3))
    raw = bytearray(path.read_bytes())
    # Flip one payload bit inside the *second* job's frames.
    ends = [end for _, end in iter_frames(bytes(raw), JOURNAL_MAGIC, JOURNAL_FORMAT)]
    target = ends[2] + frame_header_size() + 3  # payload byte of frame 4
    raw[target] ^= 0x40
    path.write_bytes(bytes(raw))
    with caplog.at_level(logging.WARNING, logger="repro.api.journal"):
        journal = JobJournal(path)
    # Frames 1-3 (job 1) survive; the flipped frame and all later ones drop.
    assert journal.recovery.jobs[1].status == "done"
    assert 3 not in journal.recovery.jobs or not journal.recovery.jobs[3].terminal
    assert journal.dropped_bytes > 0
    assert any("dropping" in r.message for r in caplog.records)
    journal.close()


def test_garbage_file_recovers_to_empty(tmp_path, caplog):
    path = tmp_path / "jobs.wal"
    path.write_bytes(b"this was never a journal" * 10)
    with caplog.at_level(logging.WARNING, logger="repro.api.journal"):
        journal = JobJournal(path)
    assert journal.recovery.jobs == {}
    assert journal.dropped_bytes == 240
    journal.append({"t": "submitted", "job": 1, "dataset_id": 1,
                    "dataset_name": "d", "config": {}})
    journal.close()
    assert count_journal_frames(path) == 1


@settings(max_examples=30, deadline=None)
@given(cut=st.integers(min_value=0, max_value=400), flip=st.integers(0, 399))
def test_any_tail_damage_recovers_a_valid_prefix(tmp_path_factory, cut, flip):
    """Truncate at any byte, flip any byte: replay never crashes and every
    job it reports is internally consistent."""
    tmp_path = tmp_path_factory.mktemp("wal")
    path = _write(tmp_path / "jobs.wal", _records(2))
    raw = bytearray(path.read_bytes())
    raw = raw[: max(0, len(raw) - cut)]
    if raw and flip < len(raw):
        raw[flip] ^= 0x01
    path.write_bytes(bytes(raw))
    journal = JobJournal(path)
    for state in journal.recovery.jobs.values():
        assert state.job_id >= 1
        if state.status == "done":
            assert state.result is not None
    journal.close()


# --------------------------------------------------------------- fault hook
def test_crash_plan_before_leaves_previous_frame_as_recovery_point(tmp_path):
    plan = JournalCrashPlan(at_frame=2, mode="before")
    journal = JobJournal(tmp_path / "jobs.wal", fault_hook=plan)
    for record in _records(1):  # 3 appends; the third dies
        journal.append(record)
    assert plan.fired and journal.dead
    # Appends after death are silent no-ops.
    journal.append({"t": "cancelled", "job": 9})
    assert count_journal_frames(tmp_path / "jobs.wal") == 2
    with JobJournal(tmp_path / "jobs.wal") as reopened:
        assert not reopened.recovery.jobs[1].terminal  # done frame lost


def test_crash_plan_torn_tail_is_repaired_on_reopen(tmp_path, caplog):
    plan = JournalCrashPlan(at_frame=2, mode="torn", cut_bytes=9)
    journal = JobJournal(tmp_path / "jobs.wal", fault_hook=plan)
    for record in _records(1):
        journal.append(record)
    assert journal.dead
    size_at_crash = (tmp_path / "jobs.wal").stat().st_size
    with caplog.at_level(logging.WARNING, logger="repro.api.journal"):
        reopened = JobJournal(tmp_path / "jobs.wal")
    assert reopened.dropped_bytes == 9
    assert (tmp_path / "jobs.wal").stat().st_size == size_at_crash - 9
    assert not reopened.recovery.jobs[1].terminal
    reopened.close()


def test_crash_plan_after_keeps_the_frame(tmp_path):
    plan = JournalCrashPlan(at_frame=2, mode="after")
    journal = JobJournal(tmp_path / "jobs.wal", fault_hook=plan)
    for record in _records(1):
        journal.append(record)
    assert journal.dead
    with JobJournal(tmp_path / "jobs.wal") as reopened:
        assert reopened.recovery.jobs[1].status == "done"


# --------------------------------------------------------------- compaction
def test_compact_drops_terminal_dataset_payloads(tmp_path):
    big = {"t": "submitted", "job": 1, "dataset_id": 1, "dataset_name": "big",
           "config": {}, "at": 1.0, "dataset": b"x" * 50_000}
    records = [
        big,
        {"t": "done", "job": 1, "result": {"acc": 0.9}, "phases_done": [], "at": 2.0},
        {"t": "submitted", "job": 2, "dataset_id": 2, "dataset_name": "pending",
         "config": {}, "at": 3.0, "dataset": b"y" * 50_000},
        {"t": "started", "job": 2, "attempt": 1, "at": 4.0},
        {"t": "kb_commit", "job": 2, "kb_dataset_id": 5, "n_rows": 2},
    ]
    path = _write(tmp_path / "jobs.wal", records)
    before = path.stat().st_size
    journal = JobJournal(path)
    journal.compact()
    journal.close()
    after = path.stat().st_size
    assert after < before - 40_000  # job 1's dataset blob is gone
    with JobJournal(path) as reopened:
        done = reopened.recovery.jobs[1]
        pending = reopened.recovery.jobs[2]
    assert done.status == "done" and done.result == {"acc": 0.9}
    assert done.dataset_state is None
    # The pending job keeps everything a re-run needs.
    assert pending.dataset_state == b"y" * 50_000
    assert pending.attempt == 1
    assert pending.kb_commit == {"dataset_id": 5, "n_rows": 2}


def test_write_failure_marks_unhealthy_and_raises(tmp_path):
    from repro.api.journal import JournalError

    journal = JobJournal(tmp_path / "jobs.wal")
    journal.append({"t": "submitted", "job": 1, "dataset_id": 1,
                    "dataset_name": "d", "config": {}})
    # Swap the descriptor for a read-only one: writes now raise OSError
    # (io.UnsupportedOperation), the disk-full / yanked-volume shape.
    journal._file.close()
    journal._file = open(tmp_path / "jobs.wal", "rb")
    with pytest.raises(JournalError):
        journal.append({"t": "started", "job": 1, "attempt": 1})
    assert not journal.healthy
    journal._file.close()
