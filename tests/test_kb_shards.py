"""Sharded knowledge-base store: routing, quarantine, fsck, health."""

import json

import pytest

from repro.data import SyntheticSpec, make_dataset
from repro.exceptions import KnowledgeBaseError
from repro.kb import KnowledgeBase
from repro.kb.shards import (
    MANIFEST_NAME,
    ShardedRecordStore,
    dataset_content_digest,
    fsck_store,
    is_sharded_root,
    shard_for_digest,
)
from repro.metafeatures import extract_metafeatures
from repro.testing.faults import corrupt_shard

N_SHARDS = 4


def _mf(seed=0, **kwargs):
    defaults = dict(name=f"d{seed}", n_instances=60, n_features=5, n_classes=2, seed=seed)
    defaults.update(kwargs)
    return extract_metafeatures(make_dataset(SyntheticSpec(**defaults)))


def _runs(i):
    return [
        {"algorithm": "knn", "config": {"k": 3}, "accuracy": 0.7 + i / 100,
         "n_folds": 3, "budget_s": 1.0},
        {"algorithm": "lda", "config": {}, "accuracy": 0.5, "n_folds": 3,
         "budget_s": 1.0},
    ]


def _populate(kb, n=6):
    for i in range(n):
        kb.add_result_batch(f"d{i}", _mf(i), _runs(i))


@pytest.fixture
def root(tmp_path):
    return tmp_path / "kb-root"


# ------------------------------------------------------------------ basics
def test_sharded_round_trip(root):
    kb = KnowledgeBase(root, shards=N_SHARDS)
    _populate(kb)
    datasets = kb.store.scan("datasets")
    runs = kb.store.scan("runs")
    kb.close()

    reopened = KnowledgeBase(root)  # auto-detected, no shards flag
    assert isinstance(reopened.store, ShardedRecordStore)
    assert reopened.store.n_shards == N_SHARDS
    assert reopened.store.scan("datasets") == datasets
    assert reopened.store.scan("runs") == runs
    assert not reopened.degraded
    reopened.close()


def test_sharded_matches_monolith_nominations(tmp_path):
    sharded = KnowledgeBase(tmp_path / "root", shards=N_SHARDS)
    mono = KnowledgeBase(tmp_path / "kb.jsonl")
    _populate(sharded)
    _populate(mono)
    query = _mf(99)
    got = [(n.algorithm, n.score, n.supporting_datasets) for n in sharded.nominate(query)]
    want = [(n.algorithm, n.score, n.supporting_datasets) for n in mono.nominate(query)]
    assert got == want
    sharded.close()
    mono.close()


def test_dataset_and_its_runs_share_a_shard(root):
    kb = KnowledgeBase(root, shards=N_SHARDS)
    _populate(kb)
    store = kb.store
    for dataset_id, data in store.scan("datasets"):
        expected = shard_for_digest(
            dataset_content_digest(data["name"], data["metafeatures"]), N_SHARDS
        )
        assert store._id_shard[dataset_id] == expected
        for run_id, run in store.scan("runs"):
            if run["dataset_id"] == dataset_id:
                assert store._id_shard[run_id] == expected
    kb.close()


def test_add_dataset_add_run_path_routes(root):
    kb = KnowledgeBase(root, shards=N_SHARDS)
    dataset_id = kb.add_dataset("d0", _mf(0))
    run_id = kb.add_run(dataset_id, "knn", {"k": 3}, accuracy=0.8)
    assert kb.store._id_shard[run_id] == kb.store._id_shard[dataset_id]
    assert kb.shard_for("d0", _mf(0)) == kb.store._id_shard[dataset_id]
    kb.close()


def test_update_delete_and_aux_tables(root):
    store = ShardedRecordStore(root, n_shards=N_SHARDS)
    record_id = store.append("notes", {"text": "hello"})
    assert store._id_shard[record_id] == 0  # aux tables live in shard 0
    store.update("notes", record_id, {"text": "bye"})
    assert store.get("notes", record_id) == {"text": "bye"}
    store.delete("notes", record_id)
    with pytest.raises(KnowledgeBaseError):
        store.get("notes", record_id)
    store.close()

    reopened = ShardedRecordStore(root)
    assert reopened.count("notes") == 0
    reopened.close()


def test_shard_count_fixed_at_creation(root):
    ShardedRecordStore(root, n_shards=3).close()
    with pytest.raises(KnowledgeBaseError, match="3 shards"):
        ShardedRecordStore(root, n_shards=5)


def test_run_for_unknown_dataset_raises(root):
    store = ShardedRecordStore(root, n_shards=N_SHARDS)
    with pytest.raises(KnowledgeBaseError, match="unknown dataset"):
        store.append("runs", {"dataset_id": 999, "algorithm": "knn"})
    store.close()


def test_is_sharded_root(root, tmp_path):
    assert not is_sharded_root(root)
    ShardedRecordStore(root, n_shards=2).close()
    assert is_sharded_root(root)
    assert not is_sharded_root(tmp_path / "kb.jsonl")


# -------------------------------------------------------------- quarantine
def test_corrupt_shard_is_quarantined_not_fatal(root):
    kb = KnowledgeBase(root, shards=N_SHARDS)
    _populate(kb, n=8)
    total = kb.n_datasets()
    victim = max(range(N_SHARDS), key=lambda i: kb.store._shards[i].log_bytes)
    lost = len(kb.store._shards[victim].tables.get("datasets", {}))
    kb.close()
    corrupt_shard(root, victim)

    degraded = KnowledgeBase(root)
    assert degraded.degraded
    health = degraded.health()
    assert health["sharded"] and health["degraded"]
    assert [q["shard"] for q in health["quarantined_shards"]] == [victim]
    # Survivors still serve reads and nominations.
    assert degraded.n_datasets() == total - lost
    assert degraded.nominate(_mf(99)) != []
    degraded.close()


def test_append_to_quarantined_shard_raises(root):
    kb = KnowledgeBase(root, shards=1)  # single shard: every append routes to it
    _populate(kb, n=2)
    kb.close()
    corrupt_shard(root, 0)
    degraded = KnowledgeBase(root)
    with pytest.raises(KnowledgeBaseError, match="quarantined"):
        degraded.add_result_batch("d9", _mf(9), _runs(9))
    degraded.close()


def test_quarantine_preserves_id_sequence(root):
    """Ids inside a quarantined shard are never reassigned to new records."""
    kb = KnowledgeBase(root, shards=1)
    _populate(kb, n=3)
    max_id = kb.store.peek_next_id() - 1
    kb.close()
    corrupt_shard(root, 0)
    degraded = KnowledgeBase(root)
    assert degraded.store.peek_next_id() == max_id + 1
    degraded.close()


def test_missing_shard_file_quarantined(root):
    kb = KnowledgeBase(root, shards=N_SHARDS)
    _populate(kb)
    victim = max(range(N_SHARDS), key=lambda i: kb.store._shards[i].log_bytes)
    kb.close()
    (root / f"shard-{victim:03d}.log").unlink()
    degraded = KnowledgeBase(root)
    assert degraded.degraded
    report = degraded.health()["quarantined_shards"]
    assert report[0]["shard"] == victim and "missing" in report[0]["reason"]
    degraded.close()


def test_truncation_below_manifest_quarantined(root):
    """Frame-aligned truncation is invisible to CRCs; the manifest catches it."""
    kb = KnowledgeBase(root, shards=1)
    _populate(kb, n=4)
    kb.close()
    log = root / "shard-000.log"
    manifest = json.loads((root / MANIFEST_NAME).read_text())
    recorded = manifest["shards"][0]["bytes"]
    log.write_bytes(log.read_bytes()[: recorded // 2])
    snap = log.with_name(log.name + ".snapshot")
    if snap.exists():
        snap.unlink()
    degraded = KnowledgeBase(root)
    assert degraded.degraded
    assert "shorter than manifest" in degraded.health()["quarantined_shards"][0]["reason"]
    degraded.close()


def test_torn_tail_repaired_not_quarantined(root):
    kb = KnowledgeBase(root, shards=1, snapshot_every=None)
    _populate(kb, n=2)
    kb.close()
    log = root / "shard-000.log"
    intact = log.read_bytes()
    log.write_bytes(intact + b"\x07" * 5)  # shorter than a frame header
    reopened = KnowledgeBase(root)
    assert not reopened.degraded
    assert reopened.store.corrupt_frames_dropped == 1
    assert reopened.n_datasets() == 2
    reopened.close()
    assert log.read_bytes() == intact  # tail truncated away


def test_shard_snapshot_fallback_counted(root):
    kb = KnowledgeBase(root, shards=1)
    _populate(kb, n=2)
    kb.close()
    snap = root / "shard-000.log.snapshot"
    raw = bytearray(snap.read_bytes())
    raw[-1] ^= 0xFF
    snap.write_bytes(bytes(raw))
    reopened = KnowledgeBase(root)
    assert reopened.store.snapshot_fallbacks == 1
    assert not reopened.degraded
    assert reopened.n_datasets() == 2  # full shard-log replay still works
    reopened.close()


# ------------------------------------------------------------------- fsck
def test_fsck_healthy(root):
    kb = KnowledgeBase(root, shards=N_SHARDS)
    _populate(kb)
    kb.close()
    report = fsck_store(root)
    assert report["healthy"] and report["sharded"]
    assert all(s["status"] == "ok" for s in report["shards"])


def test_fsck_is_read_only_without_repair(root):
    kb = KnowledgeBase(root, shards=N_SHARDS)
    _populate(kb)
    victim = max(range(N_SHARDS), key=lambda i: kb.store._shards[i].log_bytes)
    kb.close()
    corrupt_shard(root, victim)
    before = {p.name: p.read_bytes() for p in root.iterdir()}
    report = fsck_store(root)
    assert not report["healthy"]
    assert {p.name: p.read_bytes() for p in root.iterdir()} == before


def test_fsck_repair_round_trip(root):
    kb = KnowledgeBase(root, shards=N_SHARDS)
    _populate(kb, n=8)
    total = kb.n_datasets()
    victim = max(range(N_SHARDS), key=lambda i: kb.store._shards[i].log_bytes)
    lost_datasets = len(kb.store._shards[victim].tables.get("datasets", {}))
    kb.close()
    corrupt_shard(root, victim)

    report = fsck_store(root, repair=True)
    assert report["repaired"]
    damaged = [s for s in report["shards"] if s["status"] != "ok"]
    assert [s["shard"] for s in damaged] == [victim]
    assert damaged[0]["bytes_dropped"] > 0

    healed = KnowledgeBase(root)
    assert not healed.degraded
    # The corrupt byte hit the first frame: everything after it was dropped.
    assert healed.n_datasets() == total - lost_datasets
    healed.nominate(_mf(99))
    # New writes may route to the repaired shard again.
    healed.add_result_batch("fresh", _mf(50), _runs(0))
    healed.close()
    assert fsck_store(root)["healthy"]


def test_fsck_monolith(tmp_path):
    path = tmp_path / "kb.jsonl"
    kb = KnowledgeBase(path)
    _populate(kb, n=2)
    kb.close()
    assert fsck_store(path)["healthy"]
    raw = path.read_bytes()
    path.write_bytes(raw + b'{"torn')
    report = fsck_store(path)
    assert report["status"] == "torn" and not report["healthy"]
    report = fsck_store(path, repair=True)
    assert report["repaired"]
    assert path.read_bytes() == raw
    assert fsck_store(path)["healthy"]


# -------------------------------------------------------------- satellites
def test_monolith_snapshot_fallback_counted_and_logged(tmp_path, caplog):
    path = tmp_path / "kb.jsonl"
    kb = KnowledgeBase(path)
    _populate(kb, n=2)
    kb.close()
    snap = path.with_name(path.name + ".snapshot")
    raw = bytearray(snap.read_bytes())
    raw[-1] ^= 0xFF
    snap.write_bytes(bytes(raw))
    with caplog.at_level("WARNING", logger="repro.kb.store"):
        reopened = KnowledgeBase(path)
    assert reopened.store.snapshot_fallbacks == 1
    assert any("falling back to full log replay" in r.message for r in caplog.records)
    assert reopened.health() == {
        "sharded": False,
        "degraded": False,
        "snapshot_fallbacks": 1,
        "corrupt_frames_dropped": 0,
    }
    reopened.close()


def test_monolith_torn_tail_counted(tmp_path):
    path = tmp_path / "kb.jsonl"
    kb = KnowledgeBase(path, snapshot_every=None)
    _populate(kb, n=2)
    kb.close()
    path.write_bytes(path.read_bytes() + b'{"half')
    reopened = KnowledgeBase(path, snapshot_every=None)
    assert reopened.store.corrupt_frames_dropped == 1
    reopened.close()


def test_readonly_close_skips_snapshot_rewrite(tmp_path):
    path = tmp_path / "kb.jsonl"
    kb = KnowledgeBase(path)
    _populate(kb, n=3)
    kb.close()
    snap = path.with_name(path.name + ".snapshot")
    before = snap.read_bytes()
    snap_mtime = snap.stat().st_mtime_ns

    reader = KnowledgeBase(path)
    reader.nominate(_mf(99))
    reader.close()
    assert snap.stat().st_mtime_ns == snap_mtime
    assert snap.read_bytes() == before

    writer = KnowledgeBase(path)
    writer.add_result_batch("new", _mf(7), _runs(7))
    writer.close()
    assert snap.read_bytes() != before  # a writing session still checkpoints


def test_sharded_readonly_close_skips_snapshot_rewrite(root):
    kb = KnowledgeBase(root, shards=2)
    _populate(kb, n=3)
    kb.close()
    mtimes = {p.name: p.stat().st_mtime_ns for p in root.iterdir()}
    reader = KnowledgeBase(root)
    reader.nominate(_mf(99))
    reader.close()
    assert {p.name: p.stat().st_mtime_ns for p in root.iterdir()} == mtimes
