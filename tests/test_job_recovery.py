"""Crash-recovery, watchdog, retry, backpressure, and drain tests.

The centrepiece is the kill-and-restart property: for **any** injected
crash point in the job journal (any frame boundary, or mid-frame), a
restarted service that finishes the submitted work must leave durable
state — the KB record log, the model-registry directory, and the job
table's observable fields — identical to a run that never crashed.
Timestamp sources are pinned (injected constant clocks, a deterministic
runner), so "identical" is literal: byte-for-byte on the KB log and the
registry files.
"""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.jobs import (
    JobManager,
    JobStateError,
    QueueFullError,
    ServiceDrainingError,
    TERMINAL_STATUSES,
)
from repro.api.journal import JobJournal
from repro.data import SyntheticSpec, make_dataset
from repro.kb import KnowledgeBase
from repro.metafeatures import extract_metafeatures
from repro.serving import ModelRegistry
from repro.testing import FaultScript, FaultyRunner, JournalCrashPlan

KB_CLOCK = lambda: 1_000.0  # noqa: E731 - pinned wall clocks for byte identity
JOB_CLOCK = lambda: 2_000.0  # noqa: E731

#: The scenario: three jobs, the middle one registering its winner.
PLAN = [("rec-a", None), ("rec-b", "crash-model"), ("rec-c", None)]
DATASET_IDS = {"rec-a": 1, "rec-b": 2, "rec-c": 3}

#: Journal appends an uninterrupted PLAN run performs:
#: 3x submitted + 3x started + 3x kb_commit + 1x registry_commit + 3x done.
FRAMES_PER_CLEAN_RUN = 13


@pytest.fixture(scope="module")
def datasets():
    return {
        name: make_dataset(
            SyntheticSpec(name=name, n_instances=30, n_features=4,
                          n_classes=2, class_sep=2.0, seed=7 + i)
        )
        for i, name in enumerate(DATASET_IDS)
    }


def _build_stack(root, fault_hook=None, scripts=None, **manager_kw):
    """One simulated service process: KB + registry + journal + manager."""
    kb = KnowledgeBase(root / "kb.log", snapshot_every=None)
    registry = ModelRegistry(root / "registry", clock=KB_CLOCK)
    journal = JobJournal(root / "jobs.wal", fault_hook=fault_hook, clock=JOB_CLOCK)
    runner = FaultyRunner(kb, registry=registry, scripts=scripts)
    manager = JobManager(
        runner, workers=1, registry=registry, journal=journal,
        clock=JOB_CLOCK, **manager_kw,
    )
    return kb, registry, journal, manager, runner


def _drive(manager, datasets, plan=PLAN, poll_timeout=20.0):
    """Submit the plan sequentially, waiting each job out.

    Returns the dataset names whose submission was *acknowledged* (the
    simulated client got its 202).  Stops early when the injected crash
    fires — exactly like a client watching its connection die.
    """
    acked = []
    for name, register_as in plan:
        try:
            job = manager.submit(
                datasets[name], DATASET_IDS[name], {}, register_as=register_as
            )
        except Exception as exc:
            if getattr(exc, "simulates_crash", False):
                return acked, True
            raise
        acked.append(name)
        deadline = time.monotonic() + poll_timeout
        while True:
            if manager.get(job.job_id).status in TERMINAL_STATUSES:
                break
            if manager.journal.dead:
                return acked, True
            assert time.monotonic() < deadline, f"job for {name} never settled"
            time.sleep(0.005)
        if manager.journal.dead:
            return acked, True
    return acked, manager.journal.dead


def _durable_state(root):
    """Everything that must match a reference run, byte for byte."""
    kb_log = (root / "kb.log").read_bytes()
    registry_dir = root / "registry"
    registry = {
        str(p.relative_to(registry_dir)): p.read_bytes()
        for p in sorted(registry_dir.rglob("*"))
        if p.is_file()
    }
    return kb_log, registry


def _job_table(manager):
    """Observable job outcomes, keyed by dataset (timestamps excluded)."""
    return {
        job.dataset_name: (
            job.dataset_id, job.status, job.result, job.register_as, job.error
        )
        for job in manager.list_jobs()
    }


@pytest.fixture(scope="module")
def reference(tmp_path_factory, datasets):
    """The uninterrupted run every crashed run must reproduce."""
    root = tmp_path_factory.mktemp("reference")
    kb, registry, journal, manager, runner = _build_stack(root)
    acked, crashed = _drive(manager, datasets)
    assert not crashed and len(acked) == len(PLAN)
    state = _durable_state(root)
    table = _job_table(manager)
    assert all(row[1] == "done" for row in table.values())
    manager.shutdown()
    kb.close()
    return {"state": state, "table": table}


# ----------------------------------------------------------- the tentpole
@settings(max_examples=25, deadline=None)
@given(
    at_frame=st.integers(min_value=0, max_value=FRAMES_PER_CLEAN_RUN),
    mode=st.sampled_from(["before", "torn", "after"]),
    cut_bytes=st.integers(min_value=1, max_value=40),
)
def test_kill_and_restart_recovers_exactly(
    tmp_path_factory, datasets, reference, at_frame, mode, cut_bytes
):
    """Kill the service at any journal frame (or mid-frame); restart and
    finish; durable state must equal the no-crash run byte for byte."""
    root = tmp_path_factory.mktemp("crashed")
    plan = JournalCrashPlan(at_frame=at_frame, mode=mode, cut_bytes=cut_bytes)

    # --- first "process": runs until the injected kill (or to completion)
    _kb1, _reg1, journal1, manager1, _run1 = _build_stack(root, fault_hook=plan)
    acked, crashed = _drive(manager1, datasets)
    assert crashed == plan.fired
    # Durable state is frozen from the moment the crash fired; the dead
    # manager is simply abandoned, exactly like a SIGKILLed process.

    # --- second "process": same paths, fresh everything
    kb2, _reg2, journal2, manager2, runner2 = _build_stack(root)
    recovered = {job.dataset_name for job in manager2.list_jobs()}
    # A client whose submit never got its 202 resubmits — unless the crash
    # hit *after* the frame landed, in which case the job was recovered
    # (an acked submit is always durable, so acked implies recovered).
    assert all(name in recovered for name in acked)
    resubmit = [(name, reg) for name, reg in PLAN if name not in recovered]
    for name, register_as in resubmit:
        manager2.submit(datasets[name], DATASET_IDS[name], {}, register_as=register_as)
    deadline = time.monotonic() + 30.0
    while any(j.status not in TERMINAL_STATUSES for j in manager2.list_jobs()):
        assert time.monotonic() < deadline, "recovered jobs never settled"
        time.sleep(0.005)

    assert _durable_state(root) == reference["state"], (
        f"durable state diverged after crash at frame {at_frame} ({mode})"
    )
    table = _job_table(manager2)
    assert table == reference["table"]
    manager2.shutdown()
    kb2.close()


def test_restart_serves_finished_results_without_recompute(tmp_path, datasets):
    kb, registry, journal, manager, runner = _build_stack(tmp_path)
    acked, crashed = _drive(manager, datasets)
    assert not crashed
    first_calls = list(runner.calls)
    manager.shutdown()
    kb.close()

    kb2, _reg2, _j2, manager2, runner2 = _build_stack(tmp_path)
    jobs = manager2.list_jobs()
    assert len(jobs) == len(PLAN)
    assert all(j.status == "done" and j.recovered for j in jobs)
    assert all(j.result is not None for j in jobs)
    assert runner2.calls == []  # nothing re-ran
    assert len(first_calls) == len(PLAN)
    # Job ids continue past the recovered ones.
    new = manager2.submit(datasets["rec-a"], 1, {})
    assert new.job_id == max(j.job_id for j in jobs) + 1
    manager2.wait(new.job_id, timeout=20.0)
    manager2.shutdown()
    kb2.close()


# ----------------------------------------------------- timeouts & watchdog
class _SelectiveBlockingRunner:
    """Blocks (without phase callbacks) for scripted datasets: the shape of
    a genuinely wedged tuning run the watchdog must kill."""

    def __init__(self, kb, block_names=()):
        self.kb = kb
        self.registry = None
        self.release = threading.Event()
        self.entered = threading.Event()
        self.block_names = set(block_names)

    def run(self, dataset, config, on_phase=None, kb_sink=None, **kwargs):
        if on_phase:
            on_phase("preprocessing")
        if dataset.name in self.block_names:
            self.entered.set()
            self.release.wait(20.0)
        metafeatures = extract_metafeatures(dataset)
        runs = [{"algorithm": "knn", "config": {"k": 3}, "accuracy": 0.6}]
        if kb_sink is not None:
            kb_sink(dataset.name, metafeatures, runs)

        class _R:
            def to_dict(self):
                return {"dataset": dataset.name}

        return _R()


def test_watchdog_hard_timeout_replaces_wedged_worker(datasets):
    runner = _SelectiveBlockingRunner(
        KnowledgeBase(), block_names={"rec-a"}
    )
    runner.kb = KnowledgeBase()
    manager = JobManager(runner, workers=1, watchdog_interval_s=0.02)
    try:
        stuck = manager.submit(datasets["rec-a"], 1, {}, timeout_s=0.15)
        assert runner.entered.wait(5.0)
        done = manager.wait(stuck.job_id, timeout=5.0)
        assert done.status == "failed"
        assert "timeout" in done.error
        assert manager.timeouts_total == 1
        stats = manager.stats()
        assert stats["workers"]["zombies"], "wedged worker was not retired"
        # Pool capacity survived: a fresh job completes on the replacement.
        follow_up = manager.submit(datasets["rec-b"], 2, {})
        assert manager.wait(follow_up.job_id, timeout=5.0).status == "done"
    finally:
        runner.release.set()
        manager.shutdown()


def test_cooperative_timeout_fires_at_phase_boundary(datasets):
    kb = KnowledgeBase()
    runner = FaultyRunner(
        kb, scripts={"rec-a": FaultScript(fault_phase="selection", slow_s=0.25)}
    )
    manager = JobManager(runner, workers=1, watchdog_interval_s=10.0)
    try:
        # The watchdog interval is 10s: only the cooperative on_phase check
        # can fail this job inside the test's horizon.
        job = manager.submit(datasets["rec-a"], 1, {}, timeout_s=0.05)
        done = manager.wait(job.job_id, timeout=5.0)
        assert done.status == "failed" and "timeout" in done.error
        assert manager.stats()["workers"]["zombies"] == []
    finally:
        manager.shutdown()


def test_timeout_validation(datasets):
    manager = JobManager(FaultyRunner(KnowledgeBase()), workers=1)
    try:
        with pytest.raises(Exception):
            manager.submit(datasets["rec-a"], 1, {}, timeout_s=-1.0)
    finally:
        manager.shutdown()


# -------------------------------------------------------------- retries
def test_infrastructure_faults_retry_with_backoff_then_succeed(datasets):
    kb = KnowledgeBase()
    runner = FaultyRunner(kb, scripts={"rec-a": FaultScript(infra_faults=2)})
    manager = JobManager(
        runner, workers=1, max_retries=3,
        retry_backoff_s=0.01, retry_backoff_cap_s=0.05, watchdog_interval_s=0.01,
    )
    try:
        job = manager.submit(datasets["rec-a"], 1, {})
        done = manager.wait(job.job_id, timeout=10.0)
        assert done.status == "done"
        assert done.attempt == 3  # two scripted faults, then success
        assert done.error is None
        assert manager.retries_total == 2
        assert kb.n_datasets() == 1  # the KB write landed exactly once
    finally:
        manager.shutdown()


def test_retries_are_bounded(datasets):
    runner = FaultyRunner(
        KnowledgeBase(), scripts={"rec-a": FaultScript(infra_faults=99)}
    )
    manager = JobManager(
        runner, workers=1, max_retries=1,
        retry_backoff_s=0.01, watchdog_interval_s=0.01,
    )
    try:
        job = manager.submit(datasets["rec-a"], 1, {})
        done = manager.wait(job.job_id, timeout=10.0)
        assert done.status == "failed"
        assert done.attempt == 2  # initial run + one retry
        assert "shm exhaustion" in done.error
    finally:
        manager.shutdown()


def test_deterministic_user_errors_never_retry(datasets):
    runner = FaultyRunner(
        KnowledgeBase(), scripts={"rec-a": FaultScript(user_error_attempts=(1, 2))}
    )
    manager = JobManager(runner, workers=1, max_retries=5, retry_backoff_s=0.01)
    try:
        job = manager.submit(datasets["rec-a"], 1, {})
        done = manager.wait(job.job_id, timeout=10.0)
        assert done.status == "failed"
        assert done.attempt == 1
        assert manager.retries_total == 0
        assert "bad request" in done.error
    finally:
        manager.shutdown()


def test_pool_loss_is_an_infrastructure_fault(datasets):
    runner = FaultyRunner(
        KnowledgeBase(), scripts={"rec-a": FaultScript(pool_loss_attempts=(1,))}
    )
    manager = JobManager(
        runner, workers=1, max_retries=2,
        retry_backoff_s=0.01, watchdog_interval_s=0.01,
    )
    try:
        job = manager.submit(datasets["rec-a"], 1, {})
        done = manager.wait(job.job_id, timeout=10.0)
        assert done.status == "done"
        assert done.attempt == 2
    finally:
        manager.shutdown()


# ---------------------------------------------------------- backpressure
def test_queue_saturation_returns_429_after_readiness_flips(datasets):
    runner = _SelectiveBlockingRunner(KnowledgeBase(), block_names={"rec-a"})
    manager = JobManager(runner, workers=1, max_queue=3)
    try:
        manager.submit(datasets["rec-a"], 1, {})  # occupies the worker
        assert runner.entered.wait(5.0)
        manager.submit(datasets["rec-b"], 2, {})  # depth 1: still ready
        ready, _ = manager.readiness()
        assert ready
        manager.submit(datasets["rec-c"], 3, {})  # depth 2: crosses threshold
        ready, detail = manager.readiness()
        assert not ready, "readiness must flip before intake stops"
        assert detail["checks"]["queue"]["unready_at"] == 2
        # ...but intake is still open: the 429 point is the hard bound.
        manager.submit(datasets["rec-b"], 2, {})  # depth 3 == max_queue
        with pytest.raises(QueueFullError) as excinfo:
            manager.submit(datasets["rec-c"], 3, {})
        assert excinfo.value.http_status == 429
        assert excinfo.value.retry_after >= 1
    finally:
        runner.release.set()
        manager.shutdown()


def test_stats_surface(datasets):
    kb = KnowledgeBase()
    manager = JobManager(FaultyRunner(kb), workers=1, max_queue=5)
    try:
        job = manager.submit(datasets["rec-a"], 1, {})
        manager.wait(job.job_id, timeout=10.0)
        stats = manager.stats()
        assert stats["jobs"]["done"] == 1
        assert stats["queue"] == {"depth": 0, "max": 5}
        assert stats["workers"]["alive"] == 1
        assert stats["journal"] is None
        ready, detail = manager.readiness()
        assert ready and detail["checks"]["accepting_jobs"]
    finally:
        manager.shutdown()


# ------------------------------------------------------------------ drain
def test_drain_finishes_running_and_defers_queued(tmp_path, datasets):
    runner = _SelectiveBlockingRunner(KnowledgeBase(), block_names={"rec-a"})
    runner.kb = KnowledgeBase(tmp_path / "kb.log", snapshot_every=None)
    manager = JobManager(
        runner, workers=1, journal=JobJournal(tmp_path / "jobs.wal")
    )
    running = manager.submit(datasets["rec-a"], 1, {})
    assert runner.entered.wait(5.0)
    queued = manager.submit(datasets["rec-b"], 2, {})

    drained = {}
    drainer = threading.Thread(
        target=lambda: drained.update(manager.drain(timeout=10.0))
    )
    drainer.start()
    # Intake flips to 503 the moment draining starts.
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        try:
            manager.submit(datasets["rec-c"], 3, {})
        except ServiceDrainingError as exc:
            assert exc.http_status == 503
            break
        time.sleep(0.01)
    else:
        pytest.fail("draining never rejected intake")
    runner.release.set()
    drainer.join(timeout=15.0)
    assert not drainer.is_alive()
    assert drained == {"finished": 1, "deferred": 1}
    assert manager.get(running.job_id).status == "done"
    assert manager.get(queued.job_id).status == "queued"
    with pytest.raises(JobStateError):
        manager.submit(datasets["rec-c"], 3, {})  # fully stopped now

    # Next start picks the deferred job up and finishes it.
    kb2 = KnowledgeBase(tmp_path / "kb.log", snapshot_every=None)
    runner2 = FaultyRunner(kb2)
    manager2 = JobManager(runner2, workers=1, journal=JobJournal(tmp_path / "jobs.wal"))
    try:
        recovered = manager2.get(queued.job_id)
        assert recovered.recovered
        assert manager2.wait(queued.job_id, timeout=10.0).status == "done"
    finally:
        manager2.shutdown()
        kb2.close()
