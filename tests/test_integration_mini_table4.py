"""Miniature Table-4 integration test: the full comparison, deterministic.

A scaled-down version of the headline benchmark that runs inside the test
suite: small KB, two evaluation datasets, evaluation-count budgets (so the
outcome is reproducible bit-for-bit), SmartML vs the Auto-Weka baseline.
"""

import pytest

from repro import KnowledgeBase, SmartML, SmartMLConfig, bootstrap_knowledge_base
from repro.baselines import AutoWekaBaseline
from repro.data import SyntheticSpec, make_dataset

ALGOS = ["knn", "rpart", "lda", "rda"]


@pytest.fixture(scope="module")
def mini_kb():
    kb = KnowledgeBase()
    corpus = [
        make_dataset(SyntheticSpec(
            name=f"prior{i}", n_instances=90, n_features=6, n_classes=2 + (i % 2),
            class_sep=1.2 + 0.3 * (i % 3), label_noise=0.1, seed=800 + i,
        ))
        for i in range(5)
    ]
    bootstrap_knowledge_base(kb, corpus, algorithms=ALGOS,
                             configs_per_algorithm=2, n_folds=2, seed=0)
    return kb


@pytest.fixture(scope="module")
def eval_tasks():
    return [
        make_dataset(SyntheticSpec(
            name="evalA", n_instances=100, n_features=6, n_classes=2,
            class_sep=1.5, label_noise=0.1, seed=901,
        )),
        make_dataset(SyntheticSpec(
            name="evalB", n_instances=100, n_features=6, n_classes=3,
            class_sep=1.3, label_noise=0.1, seed=902,
        )),
    ]


def test_mini_table4_protocol(mini_kb, eval_tasks):
    rows = []
    for dataset in eval_tasks:
        smart = SmartML(mini_kb).run(
            dataset,
            SmartMLConfig(
                time_budget_s=None, max_evals_per_algorithm=4, n_folds=2,
                n_algorithms=3, update_kb=False, seed=3,
            ),
        )
        base = AutoWekaBaseline(
            algorithms=ALGOS, time_budget_s=None, max_config_evals=12,
            n_folds=2, seed=3,
        ).run(dataset)
        rows.append((dataset.name, smart, base))

    for name, smart, base in rows:
        # Both systems produce sane results on every dataset.
        assert 0.0 <= smart.validation_accuracy <= 1.0, name
        assert 0.0 <= base.validation_accuracy <= 1.0, name
        # SmartML used the KB (this is what distinguishes the two arms).
        assert smart.used_meta_learning, name
        assert all(c.warm_started for c in smart.candidates), name
        # The baseline tried the joint space.
        assert base.best_algorithm in ALGOS, name

    # The meta-learning arm must not be dominated across the suite.
    smart_mean = sum(s.validation_accuracy for _, s, _ in rows) / len(rows)
    base_mean = sum(b.validation_accuracy for _, _, b in rows) / len(rows)
    assert smart_mean >= base_mean - 0.1


def test_mini_table4_deterministic(mini_kb, eval_tasks):
    config = SmartMLConfig(
        time_budget_s=None, max_evals_per_algorithm=3, n_folds=2,
        n_algorithms=2, update_kb=False, seed=9,
    )
    a = SmartML(mini_kb).run(eval_tasks[0], config)
    b = SmartML(mini_kb).run(eval_tasks[0], config)
    assert a.best_algorithm == b.best_algorithm
    assert a.best_config == b.best_config
    assert a.validation_accuracy == b.validation_accuracy
