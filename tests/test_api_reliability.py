"""HTTP-level reliability behaviour: 429/Retry-After, readyz, client retry.

The in-process mechanics live in ``test_job_recovery.py``; these tests pin
the *wire* contract — status codes, Retry-After headers, readiness flips,
and the client surviving a server that is briefly unreachable.
"""

import socket
import threading
import time

import pytest

from repro.api import SmartMLClient, SmartMLServer
from repro.api.jobs import JobManager
from repro.core import SmartML
from repro.exceptions import SmartMLError
from repro.metafeatures import extract_metafeatures

CSV = "a,b,label\n" + "\n".join(
    f"{i % 7},{(i * 3) % 5},{'yes' if (i % 7) > 3 else 'no'}" for i in range(60)
)


class _BlockingRunner:
    """Holds the single worker hostage until released (backpressure tests)."""

    def __init__(self, kb):
        self.kb = kb
        self.registry = None
        self.release = threading.Event()
        self.entered = threading.Event()

    def run(self, dataset, config, on_phase=None, kb_sink=None, **kwargs):
        self.entered.set()
        self.release.wait(20.0)
        metafeatures = extract_metafeatures(dataset)
        if kb_sink is not None:
            kb_sink(dataset.name, metafeatures,
                    [{"algorithm": "knn", "config": {"k": 3}, "accuracy": 0.6}])

        class _R:
            def to_dict(self):
                return {"dataset": dataset.name}

        return _R()


@pytest.fixture()
def saturated_server():
    """A served JobManager with one wedged worker and a 2-slot queue."""
    server = SmartMLServer(SmartML(), workers=1)
    runner = _BlockingRunner(server.smartml.kb)
    server.jobs.shutdown(wait=True, timeout=5.0)
    server.jobs = JobManager(runner, workers=1, max_queue=2)
    server.serve_background()
    yield server, runner
    runner.release.set()
    server.shutdown()


def test_http_429_with_retry_after_and_readyz_flip(saturated_server):
    server, runner = saturated_server
    client = SmartMLClient(port=server.port)
    info = client.upload_csv(CSV, target="label", name="pressure")
    dataset_id = info["dataset_id"]

    assert client.readyz()["ready"] is True
    client.submit_experiment(dataset_id)  # occupies the worker
    assert runner.entered.wait(5.0)
    client.submit_experiment(dataset_id)  # depth 1: queue threshold reached

    # Readiness flips before intake stops...
    with pytest.raises(SmartMLError) as not_ready:
        client.readyz()
    assert not_ready.value.http_status == 503
    # ...while the queue still has one slot left:
    client.submit_experiment(dataset_id)  # depth 2 == max_queue

    with pytest.raises(SmartMLError) as full:
        client.submit_experiment(dataset_id)
    assert full.value.http_status == 429
    assert full.value.retry_after >= 1

    stats = client.jobs_stats()
    assert stats["queue"] == {"depth": 2, "max": 2}
    assert stats["jobs"]["running"] == 1

    # Draining the queue restores readiness.
    runner.release.set()
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        try:
            assert client.readyz()["ready"] is True
            break
        except SmartMLError:
            time.sleep(0.05)
    else:
        pytest.fail("server never became ready again")


def test_healthz_alias_and_timeout_passthrough():
    server = SmartMLServer(SmartML(), default_timeout_s=120.0)
    server.serve_background()
    try:
        client = SmartMLClient(port=server.port)
        assert client._request("GET", "/healthz")["status"] == "ok"
        info = client.upload_csv(CSV, target="label", name="t")
        fast = {"time_budget_s": None, "max_evals_per_algorithm": 1,
                "n_folds": 2, "n_algorithms": 1, "fallback_portfolio": ["knn"]}
        job = client.submit_experiment(info["dataset_id"], config=fast, timeout_s=45.0)
        assert job["timeout_s"] == 45.0
        other = client.submit_experiment(info["dataset_id"], config=fast)
        assert other["timeout_s"] == 120.0  # server default applies
    finally:
        server.shutdown()


def test_client_get_retries_until_server_appears():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    client = SmartMLClient(port=port, connect_retry_s=10.0)
    holder = {}

    def _late_start():
        time.sleep(0.4)
        server = SmartMLServer(SmartML(), port=port)
        server.serve_background()
        holder["server"] = server

    starter = threading.Thread(target=_late_start)
    starter.start()
    try:
        # The GET outlives the window where nothing is listening.
        assert client.health()["status"] == "ok"
    finally:
        starter.join()
        holder["server"].shutdown()


def test_client_retry_disabled_fails_fast():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    client = SmartMLClient(port=port, connect_retry_s=0.0)
    started = time.monotonic()
    with pytest.raises(SmartMLError, match="cannot reach the server"):
        client.health()
    assert time.monotonic() - started < 2.0


def test_client_never_retries_posts():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    client = SmartMLClient(port=port, connect_retry_s=30.0)
    started = time.monotonic()
    with pytest.raises(SmartMLError, match="cannot reach the server"):
        client.submit_experiment(1)
    assert time.monotonic() - started < 2.0, "POST must not be retried"
