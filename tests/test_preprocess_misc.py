"""Unit tests for imputation, encoding, feature selection, and the pipeline."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.exceptions import ConfigurationError
from repro.preprocess import (
    Imputer,
    OneHotEncoder,
    PREPROCESSOR_REGISTRY,
    Pipeline,
    UnivariateSelector,
    anova_f_scores,
    build_preprocessor,
    mutual_information_scores,
)


def _with_missing() -> Dataset:
    X = np.array(
        [
            [1.0, 0.0],
            [np.nan, 1.0],
            [3.0, np.nan],
            [5.0, 1.0],
            [np.nan, 1.0],
        ]
    )
    return Dataset(
        X=X, y=np.array([0, 1, 0, 1, 1]), categorical_mask=np.array([False, True])
    )


# ------------------------------------------------------------------- imputer
def test_imputer_numeric_median():
    out = Imputer().fit_transform(_with_missing())
    assert out.X[1, 0] == pytest.approx(3.0)  # median of [1, 3, 5]


def test_imputer_categorical_mode():
    out = Imputer().fit_transform(_with_missing())
    assert out.X[2, 1] == pytest.approx(1.0)  # mode of [0, 1, 1, 1]


def test_imputer_all_missing_column_filled_with_zero():
    X = np.column_stack([np.full(4, np.nan), np.arange(4.0)])
    ds = Dataset(X=X, y=np.array([0, 1, 0, 1]))
    out = Imputer().fit_transform(ds)
    assert np.allclose(out.X[:, 0], 0.0)


def test_imputer_uses_training_statistics():
    imputer = Imputer().fit(_with_missing())
    fresh = Dataset(
        X=np.array([[np.nan, np.nan]]),
        y=np.array([0]),
        categorical_mask=np.array([False, True]),
        class_names=["c0", "c1"],
    )
    out = imputer.transform(fresh)
    assert out.X[0, 0] == pytest.approx(3.0)
    assert out.X[0, 1] == pytest.approx(1.0)


# ------------------------------------------------------------------- one-hot
def test_onehot_expands_categoricals(mixed_ds):
    out = OneHotEncoder().fit_transform(mixed_ds)
    assert out.n_features > mixed_ds.n_features
    assert not out.categorical_mask.any()  # all expanded (few levels)


def test_onehot_indicator_rows_sum_to_one(mixed_ds):
    prepared = Imputer().fit_transform(mixed_ds)
    encoder = OneHotEncoder().fit(prepared)
    out = encoder.transform(prepared)
    for j in prepared.categorical_indices:
        name = prepared.feature_names[int(j)]
        cols = [i for i, n in enumerate(out.feature_names) if n.startswith(f"{name}=")]
        assert np.allclose(out.X[:, cols].sum(axis=1), 1.0)


def test_onehot_unseen_category_all_zeros():
    ds = Dataset(
        X=np.array([[0.0], [1.0], [1.0], [0.0]]),
        y=np.array([0, 1, 1, 0]),
        categorical_mask=np.array([True]),
    )
    encoder = OneHotEncoder().fit(ds)
    fresh = Dataset(
        X=np.array([[7.0]]), y=np.array([0]),
        categorical_mask=np.array([True]), class_names=["c0", "c1"],
    )
    out = encoder.transform(fresh)
    assert np.allclose(out.X, 0.0)


def test_onehot_high_cardinality_kept_as_codes():
    rng = np.random.default_rng(0)
    ds = Dataset(
        X=rng.integers(0, 50, size=(60, 1)).astype(float),
        y=rng.integers(0, 2, size=60),
        categorical_mask=np.array([True]),
    )
    out = OneHotEncoder(max_levels=10).fit_transform(ds)
    assert out.n_features == 1


# ---------------------------------------------------------- feature selection
def test_anova_prefers_informative_feature(tiny_ds):
    scores = anova_f_scores(tiny_ds)
    rng = np.random.default_rng(0)
    noise = Dataset(
        X=np.column_stack([tiny_ds.X, rng.normal(size=tiny_ds.n_instances)]),
        y=tiny_ds.y,
    )
    noisy_scores = anova_f_scores(noise)
    assert noisy_scores[-1] < max(scores)


def test_mutual_information_nonnegative(mixed_ds):
    assert (mutual_information_scores(mixed_ds) >= 0).all()


def test_selector_keeps_k(multi_ds):
    out = UnivariateSelector(k=3).fit_transform(multi_ds)
    assert out.n_features == 3


def test_selector_k_clipped(tiny_ds):
    out = UnivariateSelector(k=99).fit_transform(tiny_ds)
    assert out.n_features == tiny_ds.n_features


def test_selector_rejects_bad_args():
    with pytest.raises(ConfigurationError):
        UnivariateSelector(k=0)
    with pytest.raises(ConfigurationError):
        UnivariateSelector(k=2, score="nope")


def test_selector_mutual_info_mode(multi_ds):
    out = UnivariateSelector(k=2, score="mutual_info").fit_transform(multi_ds)
    assert out.n_features == 2


# ------------------------------------------------------------------ pipeline
def test_registry_has_exactly_the_eight_table2_operators():
    assert sorted(PREPROCESSOR_REGISTRY) == sorted(
        ["center", "scale", "range", "zv", "boxcox", "yeojohnson", "pca", "ica"]
    )


def test_build_preprocessor_prepends_imputer():
    pipe = build_preprocessor(["center"])
    assert type(pipe.steps[0]).__name__ == "Imputer"
    assert len(pipe) == 2


def test_build_preprocessor_unknown_name():
    with pytest.raises(ConfigurationError):
        build_preprocessor(["nope"])


def test_pipeline_chains_fit_statistics(mixed_ds):
    pipe = build_preprocessor(["center", "scale"])
    out = pipe.fit_transform(mixed_ds)
    numeric = out.numeric_indices
    assert np.allclose(out.X[:, numeric].mean(axis=0), 0.0, atol=1e-8)


def test_pipeline_transform_matches_fit_transform(mixed_ds):
    pipe = build_preprocessor(["center", "scale", "zv"])
    out_a = pipe.fit_transform(mixed_ds)
    out_b = pipe.transform(mixed_ds)
    assert np.allclose(out_a.X, out_b.X)


def test_full_table2_pipeline_runs(mixed_ds):
    pipe = build_preprocessor(
        ["zv", "center", "scale", "range", "yeojohnson", "pca"]
    )
    out = pipe.fit_transform(mixed_ds)
    assert np.isfinite(out.X).all()
    assert out.n_instances == mixed_ds.n_instances
