"""Exception hierarchy and assorted edge cases across modules."""

import numpy as np
import pytest

from repro.classifiers import SVM, KNN, make_classifier
from repro.classifiers.base import check_X, check_Xy
from repro.exceptions import (
    BudgetExhaustedError,
    ConfigurationError,
    DataError,
    KnowledgeBaseError,
    NotFittedError,
    ParseError,
    SearchError,
    SmartMLError,
)


def test_all_exceptions_derive_from_smartml_error():
    for exc in (
        ConfigurationError,
        DataError,
        ParseError,
        NotFittedError,
        KnowledgeBaseError,
        SearchError,
        BudgetExhaustedError,
    ):
        assert issubclass(exc, SmartMLError)


def test_parse_error_is_data_error():
    assert issubclass(ParseError, DataError)


def test_one_except_clause_catches_everything(tiny_ds):
    with pytest.raises(SmartMLError):
        make_classifier("nope")
    with pytest.raises(SmartMLError):
        KNN().predict(tiny_ds.X)


# ------------------------------------------------------------- check helpers
def test_check_xy_validates_shapes():
    with pytest.raises(DataError):
        check_Xy(np.zeros((3, 2)), np.zeros((4,), dtype=int))
    with pytest.raises(DataError):
        check_Xy(np.zeros(3), np.zeros(3, dtype=int))
    with pytest.raises(DataError):
        check_Xy(np.zeros((0, 2)), np.zeros(0, dtype=int))


def test_check_xy_rejects_inf():
    X = np.ones((3, 2))
    X[1, 1] = np.inf
    with pytest.raises(DataError):
        check_Xy(X, np.array([0, 1, 0]))


def test_check_x_feature_count():
    with pytest.raises(DataError):
        check_X(np.zeros((2, 3)), n_features=2)


def test_check_xy_casts_dtypes():
    X, y = check_Xy([[1, 2], [3, 4]], [0, 1])
    assert X.dtype == np.float64
    assert y.dtype == np.int64


# ----------------------------------------------------------------- SVM edges
def test_svm_decision_votes_sum_to_pair_count(multi_ds):
    clf = SVM(kernel="linear").fit(multi_ds.X, multi_ds.y, n_classes=multi_ds.n_classes)
    votes = clf.decision_votes(multi_ds.X)
    k = len(np.unique(multi_ds.y))
    expected_pairs = k * (k - 1) / 2
    assert np.allclose(votes.sum(axis=1), expected_pairs)


def test_svm_two_instances_per_class():
    X = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
    y = np.array([0, 0, 1, 1])
    clf = SVM(kernel="linear", cost=10.0).fit(X, y)
    assert (clf.predict(X) == y).all()


def test_svm_duplicate_points_conflicting_labels():
    # Identical points with different labels must not crash SMO.
    X = np.zeros((6, 2))
    y = np.array([0, 1, 0, 1, 0, 1])
    clf = SVM(kernel="radial").fit(X, y)
    proba = clf.predict_proba(X)
    assert np.isfinite(proba).all()


# ---------------------------------------------------------------- KNN edges
def test_knn_constant_features():
    X = np.ones((10, 3))
    y = np.array([0, 1] * 5)
    clf = KNN(k=3).fit(X, y)
    proba = clf.predict_proba(X)
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_knn_single_instance_training():
    clf = KNN(k=5).fit(np.array([[1.0, 2.0]]), np.array([0]), n_classes=3)
    assert clf.predict(np.array([[9.0, 9.0]]))[0] == 0


# ----------------------------------------------------- classifier base edges
def test_fit_with_larger_n_classes_pads_proba(tiny_ds):
    clf = KNN(k=3).fit(tiny_ds.X, tiny_ds.y, n_classes=7)
    proba = clf.predict_proba(tiny_ds.X)
    assert proba.shape == (tiny_ds.n_instances, 7)
    assert np.allclose(proba[:, 2:], 0.0)


def test_repr_contains_params():
    clf = KNN(k=9)
    assert "k=9" in repr(clf)
