"""Graceful degradation: hostile datasets, quarantine, and determinism.

The robustness contract under test:

* feeding **any** generated hostile dataset through validation + the full
  pipeline yields a result or a *structured* error — never an unhandled
  exception and never an uncaught numpy RuntimeWarning;
* a deterministically failing candidate is quarantined (structured
  :class:`CandidateFailure` in its nomination slot) and leaves the
  surviving candidates' results **bit-identical** to a plan it was never
  part of;
* a raising SMAC *trial* is recorded at +inf cost and its configuration
  is never promoted, while infrastructure faults still propagate.
"""

import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.classifiers import make_classifier
from repro.core import SmartML, SmartMLConfig
from repro.core.result import CandidateFailure, CandidateResult
from repro.data.synthetic import SyntheticSpec, make_dataset
from repro.exceptions import DatasetValidationError, ExperimentFailedError
from repro.hpo.objective import CrossValObjective
from repro.hpo.smac import SMAC, SMACSettings
from repro.hpo.spaces import classifier_space
from repro.kb.similarity import Nomination
from repro.parallel.dispatch import execute_candidates, tune_candidate
from repro.testing import HOSTILE_TRAITS, make_hostile_dataset

FAST = dict(
    time_budget_s=None,
    max_evals_per_algorithm=1,
    n_folds=2,
    n_algorithms=2,
    fallback_portfolio=["knn", "rpart"],
    update_kb=False,
)


def _small_ds(seed=21):
    return make_dataset(
        SyntheticSpec(name="small", n_instances=60, n_features=4, n_classes=2,
                      class_sep=2.0, seed=seed)
    )


# ------------------------------------------------- hostile generator itself
def test_generator_is_deterministic():
    a = make_hostile_dataset(7, traits=("heavy_missing", "constant_column"))
    b = make_hostile_dataset(7, traits=("heavy_missing", "constant_column"))
    assert np.array_equal(a.X, b.X, equal_nan=True)
    assert np.array_equal(a.y, b.y)
    assert a.name == b.name


def test_generator_rejects_unknown_traits():
    with pytest.raises(ValueError):
        make_hostile_dataset(0, traits=("not_a_trait",))


@pytest.mark.parametrize("trait", HOSTILE_TRAITS)
def test_each_trait_materialises(trait):
    ds = make_hostile_dataset(3, traits=(trait,))
    if trait == "single_class":
        assert np.unique(ds.y).size == 1
    elif trait == "lonely_class":
        assert sorted(np.bincount(ds.y))[0] == 1
    elif trait == "tiny":
        assert ds.n_instances <= 3
    elif trait == "inf_values":
        assert np.isinf(ds.X).any()
    elif trait == "all_nan_column":
        assert np.isnan(ds.X).all(axis=0).any()
    elif trait == "constant_column":
        assert any(
            np.nanmax(ds.X[:, j]) == np.nanmin(ds.X[:, j])
            for j in range(ds.n_features)
        )
    elif trait == "heavy_missing":
        assert ds.missing_ratio() > 0.2
    elif trait == "extreme_cardinality":
        assert ds.categorical_mask.any()
    elif trait == "huge_scale":
        assert np.nanmax(np.abs(ds.X)) >= 1e9
    elif trait == "duplicate_rows":
        assert len(np.unique(ds.X, axis=0)) < ds.n_instances


# ------------------------------------------------------- the core property
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    traits=st.sets(st.sampled_from(HOSTILE_TRAITS), max_size=3),
)
def test_any_hostile_dataset_yields_result_or_structured_error(seed, traits):
    """The tentpole property: structured outcome, no unhandled blowups."""
    ds = make_hostile_dataset(seed, traits=tuple(sorted(traits)))
    config = SmartMLConfig(seed=0, **FAST)
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        try:
            result = SmartML().run(ds, config)
        except (DatasetValidationError, ExperimentFailedError):
            return  # structured rejection is a valid outcome
        assert result.best_algorithm
        assert result.model is not None
        # Degraded results still carry structured failure records.
        if result.degraded:
            assert all(f.error_type for f in result.failures)


# --------------------------------------------- quarantine in the dispatcher
def test_quarantine_leaves_survivors_bit_identical():
    """A failing candidate must not perturb survivors' seeds or results."""
    ds = _small_ds()
    config = SmartMLConfig(seed=0, **FAST)
    rng = np.random.default_rng(0)
    X = ds.X[:40]
    y = ds.y[:40]
    Xv = ds.X[40:]
    yv = ds.y[40:]
    seeds = [int(rng.integers(0, 2**31 - 1)) for _ in range(3)]

    nominate = lambda algo: Nomination(algorithm=algo, score=0.0)
    with_failure = execute_candidates(
        [nominate("knn"), nominate("no_such_algorithm"), nominate("rpart")],
        seeds,
        {"knn": None, "no_such_algorithm": None, "rpart": None},
        config, X, y, Xv, yv, 2,
    )
    without = execute_candidates(
        [nominate("knn"), nominate("rpart")],
        [seeds[0], seeds[2]],
        {"knn": None, "rpart": None},
        config, X, y, Xv, yv, 2,
    )

    assert isinstance(with_failure[1], CandidateFailure)
    assert with_failure[1].phase == "setup"
    assert with_failure[1].seed == seeds[1]
    survivors = [with_failure[0], with_failure[2]]
    assert all(isinstance(c, CandidateResult) for c in survivors)
    for got, expected in zip(survivors, without):
        assert got.algorithm == expected.algorithm
        assert got.best_config == expected.best_config
        assert got.cv_error == expected.cv_error  # bit-identical, no tolerance
        assert got.validation_accuracy == expected.validation_accuracy
        assert got.n_config_evals == expected.n_config_evals


def test_tune_candidate_failure_record_shape():
    ds = _small_ds()
    config = SmartMLConfig(seed=0, **FAST)
    out = tune_candidate(
        "no_such_algorithm", [], None, config,
        ds.X[:40], ds.y[:40], ds.X[40:], ds.y[40:], 2, seed=5, fold_seed=5,
    )
    assert isinstance(out, CandidateFailure)
    assert out.phase == "setup"
    assert out.error_type == "ConfigurationError"
    assert out.traceback_digest  # stable content hash present
    assert out.origin  # innermost frame recorded
    wire = out.to_dict()
    assert wire["algorithm"] == "no_such_algorithm"
    assert isinstance(wire["message"], str)


def test_infrastructure_fault_is_not_quarantined(monkeypatch):
    ds = _small_ds()
    config = SmartMLConfig(seed=0, **FAST)

    def boom(algorithm):
        raise MemoryError("simulated OOM")

    monkeypatch.setattr("repro.parallel.dispatch.classifier_space", boom)
    with pytest.raises(MemoryError):
        tune_candidate(
            "knn", [], None, config,
            ds.X[:40], ds.y[:40], ds.X[40:], ds.y[40:], 2, seed=5, fold_seed=5,
        )


# ----------------------------------------------- quarantine inside the loop
class _FirstConfigFails(CrossValObjective):
    """Raises on every fold of the first configuration it ever sees."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._poison = None

    def evaluate_fold(self, config, key, fold_id):
        if self._poison is None:
            self._poison = key
        if key == self._poison:
            raise ValueError("deterministic trial failure")
        return super().evaluate_fold(config, key, fold_id)


def _objective(cls=CrossValObjective, seed=0):
    ds = _small_ds()
    return cls(
        lambda cfg: make_classifier("knn", **cfg),
        ds.X, ds.y, n_classes=2, n_folds=2, seed=seed,
    )


def test_smac_quarantines_failing_trial_and_recovers():
    space = classifier_space("knn")
    result = SMAC(space, SMACSettings(max_config_evals=4, seed=0)).optimize(
        _objective(_FirstConfigFails)
    )
    assert result.n_failed_trials >= 1
    assert result.failures and result.failures[0]["error"].startswith("ValueError")
    # The poisoned (first/default) config was recorded at +inf, never kept.
    assert np.isinf(result.history[0].cost)
    assert result.history[0].error is not None
    assert np.isfinite(result.incumbent_cost)
    # The incumbent is a surviving configuration, not the poisoned default.
    assert result.incumbent != space.default_config()


def test_smac_all_trials_fail_reports_structured_search_failure():
    class _AlwaysFails(CrossValObjective):
        def evaluate_fold(self, config, key, fold_id):
            raise ZeroDivisionError("nothing works")

    space = classifier_space("knn")
    result = SMAC(space, SMACSettings(max_config_evals=3, seed=0)).optimize(
        _objective(_AlwaysFails)
    )
    assert not np.isfinite(result.incumbent_cost)
    assert result.n_failed_trials >= 1
    assert all(np.isinf(r.cost) for r in result.history)
    assert all(r.error for r in result.history)


def test_smac_infrastructure_fault_propagates():
    class _Infra(CrossValObjective):
        def evaluate_fold(self, config, key, fold_id):
            raise MemoryError("simulated OOM inside a fold")

    space = classifier_space("knn")
    with pytest.raises(MemoryError):
        SMAC(space, SMACSettings(max_config_evals=2, seed=0)).optimize(
            _objective(_Infra)
        )


# --------------------------------------------------- orchestrator behaviour
def test_degraded_run_best_of_survivors():
    ds = _small_ds()
    config = SmartMLConfig(
        seed=0, time_budget_s=None, max_evals_per_algorithm=1, n_folds=2,
        n_algorithms=2, fallback_portfolio=["knn", "no_such_algorithm"],
        update_kb=False,
    )
    result = SmartML().run(ds, config)
    assert result.degraded
    assert result.best_algorithm == "knn"
    assert [f.algorithm for f in result.failures] == ["no_such_algorithm"]
    wire = result.to_dict()
    assert wire["degraded"] is True
    assert wire["failures"][0]["error_type"] == "ConfigurationError"
    assert "DEGRADED" in result.describe()


def test_all_candidates_failed_raises_structured_error():
    ds = _small_ds()
    config = SmartMLConfig(
        seed=0, time_budget_s=None, max_evals_per_algorithm=1, n_folds=2,
        n_algorithms=2, fallback_portfolio=["nope_a", "nope_b"],
        update_kb=False,
    )
    with pytest.raises(ExperimentFailedError) as err:
        SmartML().run(ds, config)
    exc = err.value
    assert len(exc.failures) == 2
    assert {f["algorithm"] for f in exc.failure_dicts()} == {"nope_a", "nope_b"}
    assert "failures" in exc.payload


def test_validation_phase_rejects_before_tuning():
    ds = make_hostile_dataset(1, traits=("single_class",))
    with pytest.raises(DatasetValidationError) as err:
        SmartML().run(ds, SmartMLConfig(seed=0, **FAST))
    codes = {i["code"] for i in err.value.payload["validation"]["errors"]}
    assert "single_class_target" in codes


# ----------------------------------------------------------- job service
def test_job_service_surfaces_degraded_and_validation():
    from repro.api.jobs import JobManager

    manager = JobManager(SmartML(), workers=1, backend="serial")
    try:
        ds = _small_ds()
        # Submit-time validation: a hostile dataset is rejected with 400.
        with pytest.raises(DatasetValidationError) as err:
            manager.submit(
                make_hostile_dataset(1, traits=("single_class",)), 1,
                dict(SmartMLConfig(seed=0, **FAST).to_dict()),
            )
        assert err.value.http_status == 400

        # A degraded run lands as done + degraded with failure records.
        degraded_cfg = SmartMLConfig(
            seed=0, time_budget_s=None, max_evals_per_algorithm=1, n_folds=2,
            n_algorithms=2, fallback_portfolio=["knn", "no_such_algorithm"],
            update_kb=False,
        )
        job = manager.submit(ds, 2, degraded_cfg.to_dict())
        job = manager.wait(job.job_id, timeout=60)
        assert job.status == "done"
        assert job.degraded
        assert job.failures[0]["algorithm"] == "no_such_algorithm"
        wire = job.to_dict()
        assert wire["degraded"] is True
        assert wire["failures"][0]["error_type"] == "ConfigurationError"

        # All candidates failing fails the job with the records attached.
        doomed_cfg = SmartMLConfig(
            seed=0, time_budget_s=None, max_evals_per_algorithm=1, n_folds=2,
            n_algorithms=2, fallback_portfolio=["nope_a", "nope_b"],
            update_kb=False,
        )
        job = manager.submit(ds, 3, doomed_cfg.to_dict())
        job = manager.wait(job.job_id, timeout=60)
        assert job.status == "failed"
        assert {f["algorithm"] for f in job.failures} == {"nope_a", "nope_b"}
    finally:
        manager.shutdown()
