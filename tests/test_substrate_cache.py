"""Equivalence suite for the shared fold-substrate cache.

The contract under test: fitting on a *registered* training matrix (warm
substrate, caches shared across candidates) produces bit-identical
``predict_proba`` output to fitting on an unregistered copy (cold path,
private substrate).  Exercised across the non-tree families, input
dtypes, and degenerate folds (single class, constant columns, n=1).
"""

from __future__ import annotations

import gc
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classifiers import make_classifier
from repro.classifiers.substrate import (
    Substrate,
    block_pinned,
    pin_block,
    share_substrate,
    shared_substrate_for,
    stable_topk,
    substrate_for,
)
from repro.classifiers.svm import _BinarySVM

#: (family, [candidate configs]) — at least two candidates so the second
#: warm fit actually hits the caches the first one built.
FAMILIES = [
    ("knn", [{"k": 1}, {"k": 3}, {"k": 7}, {"k": 50}]),
    ("svm", [
        {"kernel": "radial", "cost": 0.5},
        {"kernel": "radial", "cost": 5.0},
        {"kernel": "linear", "cost": 1.0},
        {"kernel": "polynomial", "cost": 2.0, "degree": 2, "coef0": 0.5},
    ]),
    ("naive_bayes", [
        {"laplace": 0.5, "adjust": 0.0},
        {"laplace": 3.0, "adjust": 0.0},
        {"laplace": 1.0, "adjust": 1.0},
    ]),
    ("lda", [
        {"method": "moment"},
        {"method": "mle"},
        {"method": "t", "nu": 4.0},
    ]),
    ("rda", [
        {"gamma": 0.0, "lam": 1.0},
        {"gamma": 0.3, "lam": 0.2},
        {"gamma": 1.0, "lam": 0.0},
    ]),
    ("neural_net", [{"size": 2, "max_iter": 10}, {"size": 3, "max_iter": 10}]),
    ("lmt", [{"iterations": 10}]),
]

FAMILY_IDS = [name for name, _ in FAMILIES]


def _make_problem(seed, n=24, d=4, k=3, n_discrete=1, constant_col=False,
                  single_class=False, n_test=10):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    X_test = rng.normal(size=(n_test, d))
    for j in range(min(n_discrete, d)):
        X[:, j] = rng.integers(0, 4, size=n).astype(np.float64)
        X_test[:, j] = rng.integers(0, 5, size=n_test).astype(np.float64)
    if constant_col:
        X[:, -1] = 2.5
        X_test[:, -1] = 2.5
    if single_class:
        y = np.zeros(n, dtype=np.int64)
    else:
        y = rng.integers(0, k, size=n)
        y[:k] = np.arange(k)  # every class present
    return X, y, X_test


def _assert_warm_equals_cold(name, configs, X, y, k, X_test):
    """Fit every candidate warm (shared substrate) and cold (copy); the
    predictions must match bit for bit."""
    X_cold = X.copy()
    X_test_cold = X_test.copy()
    handle = share_substrate(X)
    pin = pin_block(X_test)  # the objective pins its fold test blocks
    assert shared_substrate_for(X) is handle
    try:
        for params in configs:
            warm = make_classifier(name, **params).fit(X, y, n_classes=k)
            cold = make_classifier(name, **params).fit(X_cold, y, n_classes=k)
            p_warm = warm.predict_proba(X_test)
            p_cold = cold.predict_proba(X_test_cold)
            assert np.array_equal(p_warm, p_cold), (name, params)
            # Repeat predicts on the same block hit the per-block caches.
            assert np.array_equal(warm.predict_proba(X_test), p_warm)
    finally:
        del handle, pin


# ------------------------------------------------------------- hypothesis
@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(10, 40),
    d=st.integers(1, 5),
    k=st.integers(2, 3),
    n_discrete=st.integers(0, 2),
    constant_col=st.booleans(),
    family=st.sampled_from(FAMILY_IDS),
)
def test_cached_equals_cold_predict_proba(seed, n, d, k, n_discrete,
                                          constant_col, family):
    configs = dict(FAMILIES)[family]
    X, y, X_test = _make_problem(
        seed, n=n, d=d, k=k, n_discrete=n_discrete, constant_col=constant_col
    )
    _assert_warm_equals_cold(family, configs, X, y, k, X_test)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    m=st.integers(1, 12),
    n=st.integers(1, 40),
    k=st.integers(1, 45),
    levels=st.integers(1, 5),
)
def test_stable_topk_matches_stable_argsort(seed, m, n, k, levels):
    # Few distinct values force heavy distance ties; the selection must
    # break them by index exactly as a stable full argsort does.
    rng = np.random.default_rng(seed)
    d2 = rng.integers(0, levels, size=(m, n)).astype(np.float64)
    k = min(k, n)
    reference = np.argsort(d2, axis=1, kind="stable")[:, :k]
    assert np.array_equal(stable_topk(d2, k), reference)


# ------------------------------------------------------- degenerate folds
@pytest.mark.parametrize("name,configs", FAMILIES, ids=FAMILY_IDS)
def test_single_class_fold(name, configs):
    X, y, X_test = _make_problem(7, n=12, d=3, single_class=True)
    _assert_warm_equals_cold(name, configs, X, y, 3, X_test)


@pytest.mark.parametrize(
    "name,configs",
    [(n, c) for n, c in FAMILIES if n != "lmt"],
    ids=[n for n, _ in FAMILIES if n != "lmt"],
)
def test_single_row_fold(name, configs):
    X, y, X_test = _make_problem(11, n=1, d=3, single_class=True)
    _assert_warm_equals_cold(name, configs, X, y, 2, X_test)


@pytest.mark.parametrize("name,configs", FAMILIES, ids=FAMILY_IDS)
def test_all_columns_constant(name, configs):
    X, y, X_test = _make_problem(13, n=14, d=2, n_discrete=0)
    X[:] = 1.0
    X_test[:] = 1.0
    _assert_warm_equals_cold(name, configs, X, y, 3, X_test)


@pytest.mark.parametrize("name,configs", FAMILIES, ids=FAMILY_IDS)
def test_float32_input_matches_float64(name, configs):
    # float32 inputs are converted per call (no stable identity, so no
    # sharing); the result must equal fitting on the upcast float64 copy.
    X, y, X_test = _make_problem(17, n=16, d=3)
    X32 = X.astype(np.float32)
    Xt32 = X_test.astype(np.float32)
    X64 = X32.astype(np.float64)
    Xt64 = Xt32.astype(np.float64)
    for params in configs:
        a = make_classifier(name, **params).fit(X32, y, n_classes=3)
        b = make_classifier(name, **params).fit(X64, y, n_classes=3)
        assert np.array_equal(a.predict_proba(Xt32), b.predict_proba(Xt64))


# ------------------------------------------------------------- SVM guards
def test_binary_svm_single_row_does_not_raise():
    machine = _BinarySVM(cost=1.0)
    machine.fit(np.array([[1.0]]), np.array([1.0]), np.random.default_rng(0))
    assert machine.alpha.shape == (1,)
    assert machine.b == 0.0


def test_svm_closure_removed():
    import inspect

    from repro.classifiers import svm as svm_module

    source = inspect.getsource(svm_module._BinarySVM.fit)
    assert "def f(" not in source


# ---------------------------------------------------------------- registry
def test_registry_weakness_and_identity():
    X = np.random.default_rng(0).normal(size=(10, 3))
    entry = share_substrate(X)
    assert share_substrate(X) is entry
    assert substrate_for(X) is entry
    del entry
    gc.collect()
    assert shared_substrate_for(X) is None
    # A miss hands out a private instance per call.
    a, b = substrate_for(X), substrate_for(X)
    assert a is not b


def test_registry_skips_unconvertible_identity():
    X32 = np.random.default_rng(0).normal(size=(6, 2)).astype(np.float32)
    entry = share_substrate(X32)
    assert isinstance(entry, Substrate)
    assert shared_substrate_for(X32) is None


def test_gram_cache_eviction_stays_correct():
    X = np.random.default_rng(1).normal(size=(12, 3))
    sub = Substrate(X)
    gammas = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.1]
    grams = [sub.gram("radial", g, 3, 0.0) for g in gammas]
    fresh = Substrate(X.copy())
    for g, K in zip(gammas, grams):
        assert np.array_equal(K, fresh.gram("radial", g, 3, 0.0))


def test_neighbor_cache_grows_and_slices():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(120, 4))
    X_test = rng.normal(size=(9, 4))
    pin = pin_block(X_test)
    assert block_pinned(X_test)
    sub = Substrate(X)
    small = sub.neighbors(X_test, 3)
    deep = sub.neighbors(X_test, 100)      # beyond the cached floor of 50
    again = sub.neighbors(X_test, 3)
    assert np.array_equal(small, deep[:, :3])
    assert np.array_equal(small, again)
    cold = Substrate(X.copy()).neighbors(X_test, 100)
    assert np.array_equal(deep, cold)
    del pin
    gc.collect()
    assert not block_pinned(X_test)


@pytest.mark.parametrize("name,params", [
    ("knn", {"k": 3}),
    ("svm", {"kernel": "radial", "cost": 1.0}),
    ("naive_bayes", {"laplace": 1.0}),
])
def test_unpinned_predict_buffer_mutation_is_safe(name, params):
    # A caller-owned buffer refilled in place between predicts must not
    # hit a stale identity-keyed cache (the seed recomputed per call).
    X, y, X_test = _make_problem(29, n=30, d=4)
    handle = share_substrate(X)
    model = make_classifier(name, **params).fit(X, y, n_classes=3)
    other = np.random.default_rng(31).normal(size=X_test.shape)
    buffer = X_test.copy()
    model.predict_proba(buffer)
    buffer[:] = other
    mutated = model.predict_proba(buffer)
    fresh = model.predict_proba(other.copy())
    assert np.array_equal(mutated, fresh)
    del handle


def test_private_svm_substrate_releases_gram():
    X, y, _ = _make_problem(37, n=25, d=3)
    model = make_classifier("svm", kernel="radial", cost=1.0).fit(X, y, n_classes=3)
    assert not model._sub._grams          # private fit drops the O(n^2) state
    handle = share_substrate(X)
    shared = make_classifier("svm", kernel="radial", cost=1.0).fit(X, y, n_classes=3)
    assert shared._sub is handle and shared._sub._grams
    del handle


def test_cached_arrays_are_read_only():
    X = np.random.default_rng(3).normal(size=(10, 3))
    sub = Substrate(X)
    assert not sub.standardized().flags.writeable
    assert not sub.gram("linear", 0.1, 3, 0.0).flags.writeable
    mean, scale = sub.moments()
    assert not mean.flags.writeable and not scale.flags.writeable


def test_concurrent_fits_share_one_substrate():
    X, y, X_test = _make_problem(23, n=40, d=4)
    handle = share_substrate(X)
    results = {}

    def run(tag, name, params):
        model = make_classifier(name, **params).fit(X, y, n_classes=3)
        results[tag] = model.predict_proba(X_test)

    jobs = [
        ("knn3", "knn", {"k": 3}), ("knn9", "knn", {"k": 9}),
        ("svm1", "svm", {"kernel": "radial", "cost": 1.0}),
        ("svm2", "svm", {"kernel": "radial", "cost": 4.0}),
        ("nb", "naive_bayes", {"laplace": 1.0}),
        ("rda", "rda", {"gamma": 0.2, "lam": 0.4}),
    ]
    threads = [threading.Thread(target=run, args=job) for job in jobs]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    del handle
    for tag, name, params in jobs:
        cold = make_classifier(name, **params).fit(X.copy(), y, n_classes=3)
        assert np.array_equal(results[tag], cold.predict_proba(X_test.copy())), tag


def test_objective_registers_fold_substrates():
    from repro.classifiers import KNN
    from repro.hpo import CrossValObjective

    rng = np.random.default_rng(5)
    X = rng.normal(size=(30, 3))
    y = rng.integers(0, 2, size=30)
    objective = CrossValObjective(lambda cfg: KNN(**cfg), X, y, n_classes=2, n_folds=3)
    for fold_X, _, _, _ in objective._fold_data:
        assert shared_substrate_for(fold_X) is not None
    errors = [objective.evaluate({"k": 3}, ("k3",)), objective.evaluate({"k": 5}, ("k5",))]
    assert all(0.0 <= e <= 1.0 for e in errors)
