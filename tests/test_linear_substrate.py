"""Unit tests for the linear substrate (logistic regression, PLS) and rules."""

import numpy as np
import pytest

from repro.classifiers.linear import MultinomialLogisticRegression, PLSRegression, softmax
from repro.classifiers.rules import Condition, DecisionList, Rule, simplify_rule


# ----------------------------------------------------------------- softmax
def test_softmax_rows_sum_to_one():
    rng = np.random.default_rng(0)
    scores = rng.normal(size=(20, 4)) * 10
    proba = softmax(scores)
    assert np.allclose(proba.sum(axis=1), 1.0)
    assert (proba > 0).all()


def test_softmax_shift_invariant():
    scores = np.array([[1.0, 2.0, 3.0]])
    assert np.allclose(softmax(scores), softmax(scores + 100.0))


def test_softmax_handles_extreme_values():
    proba = softmax(np.array([[1e4, 0.0], [-1e4, 0.0]]))
    assert np.isfinite(proba).all()


# ---------------------------------------------------------------- logistic
def test_logistic_separable_high_accuracy(tiny_ds):
    clf = MultinomialLogisticRegression().fit(tiny_ds.X, tiny_ds.y)
    assert (clf.predict(tiny_ds.X) == tiny_ds.y).mean() > 0.9


def test_logistic_l2_shrinks_weights(tiny_ds):
    weak = MultinomialLogisticRegression(l2=1e-6).fit(tiny_ds.X, tiny_ds.y)
    strong = MultinomialLogisticRegression(l2=10.0).fit(tiny_ds.X, tiny_ds.y)
    assert np.abs(strong.weights_).sum() < np.abs(weak.weights_).sum()


def test_logistic_multiclass(multi_ds):
    clf = MultinomialLogisticRegression().fit(multi_ds.X, multi_ds.y)
    proba = clf.predict_proba(multi_ds.X)
    assert proba.shape == (multi_ds.n_instances, multi_ds.n_classes)
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_logistic_decision_scores_monotone_with_proba(tiny_ds):
    clf = MultinomialLogisticRegression().fit(tiny_ds.X, tiny_ds.y)
    scores = clf.decision_scores(tiny_ds.X)
    proba = clf.predict_proba(tiny_ds.X)
    assert np.array_equal(np.argmax(scores, axis=1), np.argmax(proba, axis=1))


# --------------------------------------------------------------------- PLS
def test_pls_recovers_linear_relationship():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(200, 6))
    beta = np.array([2.0, -1.0, 0.5, 0.0, 0.0, 0.0])
    Y = X @ beta + 0.01 * rng.normal(size=200)
    pls = PLSRegression(n_components=3).fit(X, Y)
    pred = pls.predict(X).ravel()
    ss_res = ((pred - Y) ** 2).sum()
    ss_tot = ((Y - Y.mean()) ** 2).sum()
    assert 1 - ss_res / ss_tot > 0.95


def test_pls_components_clipped():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(20, 3))
    Y = rng.normal(size=(20, 2))
    pls = PLSRegression(n_components=50).fit(X, Y)
    assert pls.n_components_ <= 3


def test_pls_transform_shape():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(50, 5))
    Y = rng.normal(size=50)
    pls = PLSRegression(n_components=2).fit(X, Y)
    assert pls.transform(X).shape == (50, pls.n_components_)


def test_pls_constant_target_degenerates_gracefully():
    X = np.random.default_rng(4).normal(size=(30, 4))
    Y = np.ones(30)
    pls = PLSRegression(n_components=2).fit(X, Y)
    assert np.allclose(pls.predict(X), 1.0, atol=1e-8)


def test_pls_invalid_components():
    with pytest.raises(Exception):
        PLSRegression(n_components=0)


# ------------------------------------------------------------------- rules
def test_condition_matching():
    X = np.array([[1.0], [3.0], [5.0]])
    le = Condition(0, "le", 3.0)
    gt = Condition(0, "gt", 3.0)
    assert list(le.matches(X)) == [True, True, False]
    assert list(gt.matches(X)) == [False, False, True]


def test_rule_confidence_laplace():
    rule = Rule([Condition(0, "le", 1.0)], np.array([8.0, 2.0]))
    assert rule.prediction == 0
    assert rule.confidence == pytest.approx((8 + 1) / (10 + 2))


def test_decision_list_first_match_wins():
    rules = [
        Rule([Condition(0, "le", 0.0)], np.array([10.0, 0.0])),
        Rule([Condition(0, "le", 10.0)], np.array([0.0, 10.0])),
    ]
    dl = DecisionList(rules, default_counts=np.array([1.0, 1.0]))
    X = np.array([[-1.0], [5.0], [100.0]])
    proba = dl.predict_proba(X, 2)
    assert np.argmax(proba[0]) == 0   # first rule
    assert np.argmax(proba[1]) == 1   # second rule
    assert proba[2, 0] == pytest.approx(0.5)  # default


def test_simplify_rule_drops_redundant_condition():
    rng = np.random.default_rng(5)
    X = rng.uniform(-1, 1, size=(200, 2))
    y = (X[:, 0] > 0).astype(np.int64)
    # Second condition on an irrelevant feature.
    rule = Rule(
        [Condition(0, "gt", 0.0), Condition(1, "le", 0.9)],
        np.bincount(y[(X[:, 0] > 0) & (X[:, 1] <= 0.9)], minlength=2).astype(float),
    )
    simplified = simplify_rule(rule, X, y, 2)
    assert len(simplified.conditions) == 1
    assert simplified.conditions[0].feature == 0


def test_rule_describe_uses_feature_names():
    rule = Rule([Condition(0, "le", 1.5)], np.array([3.0, 1.0]))
    assert "age <= 1.5" in rule.describe(["age"])
