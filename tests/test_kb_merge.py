"""Deterministic cross-instance KB merge: order-independence, dedup."""

import hashlib
import itertools
from pathlib import Path

import pytest

from repro.data import SyntheticSpec, make_dataset
from repro.exceptions import KnowledgeBaseError
from repro.kb import KnowledgeBase
from repro.kb.shards import merge_kb_roots
from repro.metafeatures import extract_metafeatures
from repro.testing.faults import corrupt_shard

_MF = [
    extract_metafeatures(
        make_dataset(
            SyntheticSpec(name=f"d{i}", n_instances=50, n_features=4, n_classes=2, seed=i)
        )
    )
    for i in range(6)
]


def _runs(i):
    return [
        {"algorithm": "knn", "config": {"k": 3}, "accuracy": 0.7 + i / 100,
         "n_folds": 3, "budget_s": 1.0},
        {"algorithm": "lda", "config": {}, "accuracy": 0.5, "n_folds": 3,
         "budget_s": 1.0},
    ]


def _instance(root, indices, shards=3):
    kb = KnowledgeBase(root, shards=shards)
    for i in indices:
        kb.add_result_batch(f"d{i}", _MF[i], _runs(i))
    kb.close()
    return root


def _root_digest(root) -> str:
    digest = hashlib.md5()
    for path in sorted(Path(root).iterdir()):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


@pytest.fixture
def instances(tmp_path):
    """Three instance roots with overlapping run histories (0-5 overall)."""
    return [
        _instance(tmp_path / "a", [0, 1, 2]),
        _instance(tmp_path / "b", [2, 3, 4]),
        _instance(tmp_path / "c", [4, 5]),
    ]


def test_merge_order_independent_and_byte_identical(tmp_path, instances):
    digests = set()
    for k, perm in enumerate(itertools.permutations(instances)):
        dest = tmp_path / f"merged-{k}"
        report = merge_kb_roots(dest, list(perm), n_shards=3)
        assert report["datasets"] == 6 and report["runs"] == 12  # deduped
        digests.add(_root_digest(dest))
    assert len(digests) == 1

    merged = KnowledgeBase(tmp_path / "merged-0")
    assert merged.n_datasets() == 6 and merged.n_runs() == 12
    merged.close()


def test_merge_idempotent(tmp_path, instances):
    dest = tmp_path / "pooled"
    merge_kb_roots(dest, instances, n_shards=3)
    before = _root_digest(dest)
    report = merge_kb_roots(dest, instances, n_shards=3)
    assert report["datasets"] == 6 and report["runs"] == 12
    assert _root_digest(dest) == before


def test_merged_nominations_match_single_observer(tmp_path, instances):
    dest = tmp_path / "pooled"
    merge_kb_roots(dest, instances, n_shards=3)
    merged = KnowledgeBase(dest)
    single = KnowledgeBase(tmp_path / "single", shards=3)
    for i in range(6):
        single.add_result_batch(f"d{i}", _MF[i], _runs(i))

    def names(kb):
        return {record_id: data["name"] for record_id, data in kb.store.scan("datasets")}

    query = _MF[0]
    got, want = merged.nominate(query), single.nominate(query)
    assert [n.algorithm for n in got] == [n.algorithm for n in want]
    for g, w in zip(got, want):
        # Scores can differ in the last ulp: the z-normaliser's reductions
        # see the meta-feature rows in id order, and canonical merge ids
        # differ from insertion ids.  Supporting sets must name the same
        # datasets, in the same rank order.
        assert g.score == pytest.approx(w.score, rel=1e-9)
        assert [names(merged)[i] for i in g.supporting_datasets] == [
            names(single)[i] for i in w.supporting_datasets
        ]
        assert g.warm_configs == w.warm_configs
    merged.close()
    single.close()


def test_kb_merge_method_in_place(tmp_path, instances):
    a, b, c = instances
    kb = KnowledgeBase(a)
    assert kb.n_datasets() == 3
    report = kb.merge([b, c])
    assert report["datasets"] == 6 and report["runs"] == 12
    # Reopened in place: reads and writes work against the merged store.
    assert kb.n_datasets() == 6 and kb.n_runs() == 12
    assert kb.nominate(_MF[0]) != []
    kb.add_result_batch("extra", _MF[5], _runs(5))
    kb.close()

    reopened = KnowledgeBase(a)
    assert reopened.n_datasets() == 7
    reopened.close()


def test_merge_refuses_degraded_dest(tmp_path, instances):
    a, b, _ = instances
    corrupt_shard(a, 0)
    kb = KnowledgeBase(a)
    assert kb.degraded
    with pytest.raises(KnowledgeBaseError, match="fsck --repair"):
        kb.merge([b])
    kb.close()


def test_merge_refuses_corrupt_source(tmp_path, instances):
    a, b, _ = instances
    corrupt_shard(b, 0)
    with pytest.raises(KnowledgeBaseError, match="fsck --repair"):
        merge_kb_roots(tmp_path / "pooled", [a, b], n_shards=3)


def test_merge_monolith_sources_into_sharded_dest(tmp_path):
    mono_a = tmp_path / "a.jsonl"
    kb = KnowledgeBase(mono_a)
    for i in (0, 1):
        kb.add_result_batch(f"d{i}", _MF[i], _runs(i))
    kb.close()
    sharded_b = _instance(tmp_path / "b", [1, 2])

    dest = tmp_path / "pooled"
    report = merge_kb_roots(dest, [mono_a, sharded_b], n_shards=2)
    assert report["sharded"]
    assert report["datasets"] == 3 and report["runs"] == 6
    merged = KnowledgeBase(dest)
    assert merged.n_datasets() == 3
    merged.close()


def test_merge_into_monolith_dest_stays_monolith(tmp_path):
    dest = tmp_path / "dest.jsonl"
    kb = KnowledgeBase(dest)
    kb.add_result_batch("d0", _MF[0], _runs(0))
    kb.close()
    source = _instance(tmp_path / "src", [1, 2])

    report = merge_kb_roots(dest, [source])
    assert not report["sharded"]
    merged = KnowledgeBase(dest)
    assert not merged.health()["sharded"]
    assert merged.n_datasets() == 3 and merged.n_runs() == 6
    merged.close()
