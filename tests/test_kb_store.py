"""Unit + property tests for the append-log record store."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import KnowledgeBaseError
from repro.kb import RecordStore


def test_in_memory_roundtrip():
    store = RecordStore()
    record_id = store.append("t", {"a": 1})
    assert store.get("t", record_id) == {"a": 1}
    assert store.count("t") == 1


def test_ids_monotonically_increase():
    store = RecordStore()
    ids = [store.append("t", {"i": i}) for i in range(5)]
    assert ids == sorted(ids)
    assert len(set(ids)) == 5


def test_scan_ordered():
    store = RecordStore()
    for i in range(4):
        store.append("t", {"i": i})
    scanned = store.scan("t")
    assert [data["i"] for _, data in scanned] == [0, 1, 2, 3]


def test_multiple_tables_isolated():
    store = RecordStore()
    store.append("a", {"x": 1})
    store.append("b", {"y": 2})
    assert store.count("a") == 1
    assert store.count("b") == 1
    assert store.tables() == ["a", "b"]


def test_update_overwrites():
    store = RecordStore()
    rid = store.append("t", {"v": 1})
    store.update("t", rid, {"v": 2})
    assert store.get("t", rid) == {"v": 2}


def test_delete_tombstones():
    store = RecordStore()
    rid = store.append("t", {"v": 1})
    store.delete("t", rid)
    assert store.count("t") == 0
    with pytest.raises(KnowledgeBaseError):
        store.get("t", rid)


def test_update_missing_raises():
    store = RecordStore()
    with pytest.raises(KnowledgeBaseError):
        store.update("t", 99, {})


def test_delete_missing_raises():
    store = RecordStore()
    with pytest.raises(KnowledgeBaseError):
        store.delete("t", 99)


def test_persistence_across_reopen(tmp_path):
    path = tmp_path / "kb.jsonl"
    with RecordStore(path) as store:
        rid = store.append("t", {"v": 42})
        store.append("t", {"v": 43})
        store.delete("t", rid)
    with RecordStore(path) as reopened:
        assert reopened.count("t") == 1
        records = reopened.scan("t")
        assert records[0][1] == {"v": 43}


def test_ids_continue_after_reopen(tmp_path):
    path = tmp_path / "kb.jsonl"
    with RecordStore(path) as store:
        first = store.append("t", {})
    with RecordStore(path) as reopened:
        second = reopened.append("t", {})
    assert second > first


def test_torn_final_write_repaired(tmp_path):
    path = tmp_path / "kb.jsonl"
    with RecordStore(path) as store:
        store.append("t", {"v": 1})
        store.append("t", {"v": 2})
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"op": "put", "table": "t", "id": 3, "da')  # torn write
    with RecordStore(path) as recovered:
        assert recovered.count("t") == 2
    # Repair must have rewritten a clean file.
    for line in path.read_text().splitlines():
        json.loads(line)


def test_mid_file_corruption_raises(tmp_path):
    path = tmp_path / "kb.jsonl"
    with RecordStore(path) as store:
        store.append("t", {"v": 1})
        store.append("t", {"v": 2})
    lines = path.read_text().splitlines()
    lines[0] = "garbage{{{"
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(KnowledgeBaseError):
        RecordStore(path)


def test_malformed_entry_raises(tmp_path):
    path = tmp_path / "kb.jsonl"
    path.write_text('{"op": "put", "table": 5, "id": "x"}\n{"op":"noop"}\n')
    with pytest.raises(KnowledgeBaseError):
        RecordStore(path)


def test_compaction_shrinks_log(tmp_path):
    path = tmp_path / "kb.jsonl"
    with RecordStore(path) as store:
        rid = store.append("t", {"v": 0})
        for i in range(20):
            store.update("t", rid, {"v": i})
        size_before = path.stat().st_size
        store.compact()
        size_after = path.stat().st_size
        assert size_after < size_before
        assert store.get("t", rid) == {"v": 19}
    with RecordStore(path) as reopened:
        assert reopened.get("t", rid) == {"v": 19}


def test_store_appendable_after_compaction(tmp_path):
    path = tmp_path / "kb.jsonl"
    with RecordStore(path) as store:
        store.append("t", {"v": 1})
        store.compact()
        store.append("t", {"v": 2})
    with RecordStore(path) as reopened:
        assert reopened.count("t") == 2


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["a", "b"]), st.integers(min_value=0, max_value=99)),
        min_size=1,
        max_size=30,
    )
)
def test_property_reopen_equals_in_memory(tmp_path_factory, ops):
    path = tmp_path_factory.mktemp("kb") / "log.jsonl"
    with RecordStore(path) as store:
        for table, value in ops:
            store.append(table, {"v": value})
        snapshot = {t: store.scan(t) for t in store.tables()}
    with RecordStore(path) as reopened:
        assert {t: reopened.scan(t) for t in reopened.tables()} == snapshot


def test_append_many_consecutive_ids_single_batch(tmp_path):
    path = tmp_path / "batch.jsonl"
    store = RecordStore(path)
    solo = store.append("t", {"solo": True})
    ids = store.append_many([("t", {"i": 0}), ("u", {"i": 1}), ("t", {"i": 2})])
    assert ids == [solo + 1, solo + 2, solo + 3]
    assert store.get("u", ids[1]) == {"i": 1}
    # The batch lands as contiguous, parseable log lines in append order.
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert [entry["id"] for entry in lines] == [solo] + ids
    store.close()
    # And survives a reopen like any other writes.
    reopened = RecordStore(path)
    assert reopened.count("t") == 3
    assert reopened.count("u") == 1
    reopened.close()


def test_append_many_matches_sequential_appends(tmp_path):
    rows = [("t", {"i": i}) for i in range(4)]
    batch_path = tmp_path / "batch.jsonl"
    seq_path = tmp_path / "seq.jsonl"
    batch = RecordStore(batch_path)
    batch.append_many(rows)
    batch.close()
    seq = RecordStore(seq_path)
    for table, data in rows:
        seq.append(table, data)
    seq.close()
    assert batch_path.read_text() == seq_path.read_text()


def test_locked_peek_next_id():
    store = RecordStore()
    with store.locked():
        upcoming = store.peek_next_id()
        ids = store.append_many([("t", {}), ("t", {})])
    assert ids == [upcoming, upcoming + 1]


# ------------------------------------------------------------- snapshots


def _parse_count(monkeypatch):
    """Count json.loads calls made by the store module (log lines parsed)."""
    import repro.kb.store as store_module

    counter = {"n": 0}
    real_loads = store_module.json.loads

    def counting_loads(*args, **kwargs):
        counter["n"] += 1
        return real_loads(*args, **kwargs)

    monkeypatch.setattr(store_module.json, "loads", counting_loads)
    return counter


def test_snapshot_then_tail_replay(tmp_path, monkeypatch):
    path = tmp_path / "kb.jsonl"
    store = RecordStore(path, snapshot_every=None)
    for i in range(5):
        store.append("t", {"i": i})
    store.snapshot()
    for i in range(5, 8):
        store.append("t", {"i": i})
    store.close()
    assert store.snapshot_path.exists()

    counter = _parse_count(monkeypatch)
    with RecordStore(path, snapshot_every=None) as reopened:
        assert [d["i"] for _, d in reopened.scan("t")] == list(range(8))
        next_id = reopened.peek_next_id()
    # Only the 3 lines written after the checkpoint were JSON-parsed.
    assert counter["n"] == 3

    # And the restored state is exactly what a full replay produces.
    store.snapshot_path.unlink()
    counter["n"] = 0
    with RecordStore(path, snapshot_every=None) as replayed:
        assert [d["i"] for _, d in replayed.scan("t")] == list(range(8))
        assert replayed.peek_next_id() == next_id
    assert counter["n"] == 8


def test_close_checkpoints_for_next_startup(tmp_path, monkeypatch):
    path = tmp_path / "kb.jsonl"
    with RecordStore(path) as store:
        for i in range(4):
            store.append("t", {"i": i})
    counter = _parse_count(monkeypatch)
    with RecordStore(path) as reopened:
        assert reopened.count("t") == 4
    assert counter["n"] == 0  # close() wrote a snapshot covering everything


def test_corrupt_snapshot_falls_back_to_full_replay(tmp_path):
    path = tmp_path / "kb.jsonl"
    with RecordStore(path) as store:
        store.append("t", {"v": 1})
        snapshot_path = store.snapshot_path
    snapshot_path.write_bytes(b"not a pickle at all")
    with RecordStore(path) as recovered:
        assert recovered.get("t", 1) == {"v": 1}


def test_stale_snapshot_ignored_after_log_rewrite(tmp_path):
    path = tmp_path / "kb.jsonl"
    with RecordStore(path) as store:
        store.append("t", {"v": 1})
        store.append("t", {"v": 2})
    # Rewrite the log out from under the sidecar: digest mismatch.
    lines = path.read_text().splitlines()
    path.write_text(lines[0] + "\n")
    with RecordStore(path) as reopened:
        assert reopened.count("t") == 1
        assert reopened.get("t", 1) == {"v": 1}


def test_torn_tail_after_snapshot_repaired(tmp_path):
    path = tmp_path / "kb.jsonl"
    with RecordStore(path) as store:
        store.append("t", {"v": 1})
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"op": "put", "table": "t", "id": 2, "da')  # torn write
    with RecordStore(path) as recovered:
        assert recovered.count("t") == 1
    for line in path.read_text().splitlines():
        json.loads(line)


def test_automatic_snapshot_interval(tmp_path):
    path = tmp_path / "kb.jsonl"
    store = RecordStore(path, snapshot_every=5)
    for i in range(4):
        store.append("t", {"i": i})
    assert not store.snapshot_path.exists()
    store.append("t", {"i": 4})
    assert store.snapshot_path.exists()
    store.close()


def test_compact_refreshes_snapshot(tmp_path, monkeypatch):
    path = tmp_path / "kb.jsonl"
    store = RecordStore(path, snapshot_every=2)
    rid = store.append("t", {"v": 0})
    for i in range(6):
        store.update("t", rid, {"v": i})
    store.compact()
    store.close()
    counter = _parse_count(monkeypatch)
    with RecordStore(path) as reopened:
        assert reopened.get("t", rid) == {"v": 5}
    assert counter["n"] == 0  # post-compaction snapshot covers the whole log


def test_in_memory_snapshot_is_noop():
    store = RecordStore()
    assert store.snapshot_path is None
    store.snapshot()  # must not raise
    store.append("t", {})
    assert store.count("t") == 1


def test_concurrent_appends_thread_safe():
    import threading

    store = RecordStore()
    errors = []

    def write(tag):
        try:
            for i in range(50):
                store.append("t", {"tag": tag, "i": i})
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=write, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert store.count("t") == 200
    ids = [record_id for record_id, _ in store.scan("t")]
    assert len(set(ids)) == 200  # no id collisions under concurrency
