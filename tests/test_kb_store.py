"""Unit + property tests for the append-log record store."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import KnowledgeBaseError
from repro.kb import RecordStore


def test_in_memory_roundtrip():
    store = RecordStore()
    record_id = store.append("t", {"a": 1})
    assert store.get("t", record_id) == {"a": 1}
    assert store.count("t") == 1


def test_ids_monotonically_increase():
    store = RecordStore()
    ids = [store.append("t", {"i": i}) for i in range(5)]
    assert ids == sorted(ids)
    assert len(set(ids)) == 5


def test_scan_ordered():
    store = RecordStore()
    for i in range(4):
        store.append("t", {"i": i})
    scanned = store.scan("t")
    assert [data["i"] for _, data in scanned] == [0, 1, 2, 3]


def test_multiple_tables_isolated():
    store = RecordStore()
    store.append("a", {"x": 1})
    store.append("b", {"y": 2})
    assert store.count("a") == 1
    assert store.count("b") == 1
    assert store.tables() == ["a", "b"]


def test_update_overwrites():
    store = RecordStore()
    rid = store.append("t", {"v": 1})
    store.update("t", rid, {"v": 2})
    assert store.get("t", rid) == {"v": 2}


def test_delete_tombstones():
    store = RecordStore()
    rid = store.append("t", {"v": 1})
    store.delete("t", rid)
    assert store.count("t") == 0
    with pytest.raises(KnowledgeBaseError):
        store.get("t", rid)


def test_update_missing_raises():
    store = RecordStore()
    with pytest.raises(KnowledgeBaseError):
        store.update("t", 99, {})


def test_delete_missing_raises():
    store = RecordStore()
    with pytest.raises(KnowledgeBaseError):
        store.delete("t", 99)


def test_persistence_across_reopen(tmp_path):
    path = tmp_path / "kb.jsonl"
    with RecordStore(path) as store:
        rid = store.append("t", {"v": 42})
        store.append("t", {"v": 43})
        store.delete("t", rid)
    with RecordStore(path) as reopened:
        assert reopened.count("t") == 1
        records = reopened.scan("t")
        assert records[0][1] == {"v": 43}


def test_ids_continue_after_reopen(tmp_path):
    path = tmp_path / "kb.jsonl"
    with RecordStore(path) as store:
        first = store.append("t", {})
    with RecordStore(path) as reopened:
        second = reopened.append("t", {})
    assert second > first


def test_torn_final_write_repaired(tmp_path):
    path = tmp_path / "kb.jsonl"
    with RecordStore(path) as store:
        store.append("t", {"v": 1})
        store.append("t", {"v": 2})
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"op": "put", "table": "t", "id": 3, "da')  # torn write
    with RecordStore(path) as recovered:
        assert recovered.count("t") == 2
    # Repair must have rewritten a clean file.
    for line in path.read_text().splitlines():
        json.loads(line)


def test_mid_file_corruption_raises(tmp_path):
    path = tmp_path / "kb.jsonl"
    with RecordStore(path) as store:
        store.append("t", {"v": 1})
        store.append("t", {"v": 2})
    lines = path.read_text().splitlines()
    lines[0] = "garbage{{{"
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(KnowledgeBaseError):
        RecordStore(path)


def test_malformed_entry_raises(tmp_path):
    path = tmp_path / "kb.jsonl"
    path.write_text('{"op": "put", "table": 5, "id": "x"}\n{"op":"noop"}\n')
    with pytest.raises(KnowledgeBaseError):
        RecordStore(path)


def test_compaction_shrinks_log(tmp_path):
    path = tmp_path / "kb.jsonl"
    with RecordStore(path) as store:
        rid = store.append("t", {"v": 0})
        for i in range(20):
            store.update("t", rid, {"v": i})
        size_before = path.stat().st_size
        store.compact()
        size_after = path.stat().st_size
        assert size_after < size_before
        assert store.get("t", rid) == {"v": 19}
    with RecordStore(path) as reopened:
        assert reopened.get("t", rid) == {"v": 19}


def test_store_appendable_after_compaction(tmp_path):
    path = tmp_path / "kb.jsonl"
    with RecordStore(path) as store:
        store.append("t", {"v": 1})
        store.compact()
        store.append("t", {"v": 2})
    with RecordStore(path) as reopened:
        assert reopened.count("t") == 2


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["a", "b"]), st.integers(min_value=0, max_value=99)),
        min_size=1,
        max_size=30,
    )
)
def test_property_reopen_equals_in_memory(tmp_path_factory, ops):
    path = tmp_path_factory.mktemp("kb") / "log.jsonl"
    with RecordStore(path) as store:
        for table, value in ops:
            store.append(table, {"v": value})
        snapshot = {t: store.scan(t) for t in store.tables()}
    with RecordStore(path) as reopened:
        assert {t: reopened.scan(t) for t in reopened.tables()} == snapshot


def test_append_many_consecutive_ids_single_batch(tmp_path):
    path = tmp_path / "batch.jsonl"
    store = RecordStore(path)
    solo = store.append("t", {"solo": True})
    ids = store.append_many([("t", {"i": 0}), ("u", {"i": 1}), ("t", {"i": 2})])
    assert ids == [solo + 1, solo + 2, solo + 3]
    assert store.get("u", ids[1]) == {"i": 1}
    # The batch lands as contiguous, parseable log lines in append order.
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert [entry["id"] for entry in lines] == [solo] + ids
    store.close()
    # And survives a reopen like any other writes.
    reopened = RecordStore(path)
    assert reopened.count("t") == 3
    assert reopened.count("u") == 1
    reopened.close()


def test_append_many_matches_sequential_appends(tmp_path):
    rows = [("t", {"i": i}) for i in range(4)]
    batch_path = tmp_path / "batch.jsonl"
    seq_path = tmp_path / "seq.jsonl"
    batch = RecordStore(batch_path)
    batch.append_many(rows)
    batch.close()
    seq = RecordStore(seq_path)
    for table, data in rows:
        seq.append(table, data)
    seq.close()
    assert batch_path.read_text() == seq_path.read_text()


def test_locked_peek_next_id():
    store = RecordStore()
    with store.locked():
        upcoming = store.peek_next_id()
        ids = store.append_many([("t", {}), ("t", {})])
    assert ids == [upcoming, upcoming + 1]


def test_concurrent_appends_thread_safe():
    import threading

    store = RecordStore()
    errors = []

    def write(tag):
        try:
            for i in range(50):
                store.append("t", {"tag": tag, "i": i})
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=write, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert store.count("t") == 200
    ids = [record_id for record_id, _ in store.scan("t")]
    assert len(set(ids)) == 200  # no id collisions under concurrency
