"""Contract tests every Table-3 classifier must satisfy."""

import numpy as np
import pytest

from repro.classifiers import CLASSIFIER_REGISTRY, make_classifier
from repro.exceptions import ConfigurationError, DataError, NotFittedError

#: Cheap hyperparameters so the whole matrix stays fast.
FAST_PARAMS: dict[str, dict] = {
    "svm": {"cost": 1.0},
    "naive_bayes": {},
    "knn": {"k": 3},
    "bagging": {"nbagg": 5},
    "part": {},
    "j48": {},
    "random_forest": {"ntree": 8},
    "c50": {"trials": 2},
    "rpart": {},
    "lda": {},
    "plsda": {"ncomp": 3},
    "lmt": {"iterations": 10},
    "rda": {},
    "neural_net": {"size": 4, "max_iter": 40},
    "deep_boost": {"num_iter": 5},
}

ALL_NAMES = sorted(CLASSIFIER_REGISTRY)


def _fit(name, ds):
    clf = make_classifier(name, **FAST_PARAMS[name])
    clf.fit(ds.X, ds.y, n_classes=ds.n_classes)
    return clf


def test_registry_has_15_classifiers():
    assert len(CLASSIFIER_REGISTRY) == 15


def test_make_classifier_unknown_name():
    with pytest.raises(ConfigurationError):
        make_classifier("not_a_model")


@pytest.mark.parametrize("name", ALL_NAMES)
def test_predict_proba_shape_and_normalisation(name, multi_ds):
    clf = _fit(name, multi_ds)
    proba = clf.predict_proba(multi_ds.X)
    assert proba.shape == (multi_ds.n_instances, multi_ds.n_classes)
    assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)
    assert (proba >= -1e-12).all()


@pytest.mark.parametrize("name", ALL_NAMES)
def test_predict_matches_argmax_proba(name, multi_ds):
    clf = _fit(name, multi_ds)
    proba = clf.predict_proba(multi_ds.X)
    assert np.array_equal(clf.predict(multi_ds.X), np.argmax(proba, axis=1))


@pytest.mark.parametrize("name", ALL_NAMES)
def test_beats_chance_on_separable_data(name, tiny_ds):
    clf = _fit(name, tiny_ds)
    accuracy = float((clf.predict(tiny_ds.X) == tiny_ds.y).mean())
    assert accuracy > 0.7, f"{name} training accuracy {accuracy:.3f}"


@pytest.mark.parametrize("name", ALL_NAMES)
def test_predict_before_fit_raises(name, tiny_ds):
    clf = make_classifier(name, **FAST_PARAMS[name])
    with pytest.raises(NotFittedError):
        clf.predict(tiny_ds.X)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_feature_count_mismatch_raises(name, tiny_ds):
    clf = _fit(name, tiny_ds)
    with pytest.raises(DataError):
        clf.predict(tiny_ds.X[:, :-1])


@pytest.mark.parametrize("name", ALL_NAMES)
def test_nan_input_rejected(name, tiny_ds):
    clf = make_classifier(name, **FAST_PARAMS[name])
    bad = tiny_ds.X.copy()
    bad[0, 0] = np.nan
    with pytest.raises(DataError):
        clf.fit(bad, tiny_ds.y)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_single_class_training(name, tiny_ds):
    y = np.zeros(tiny_ds.n_instances, dtype=np.int64)
    clf = make_classifier(name, **FAST_PARAMS[name])
    clf.fit(tiny_ds.X, y, n_classes=2)
    proba = clf.predict_proba(tiny_ds.X)
    assert proba.shape == (tiny_ds.n_instances, 2)
    assert (clf.predict(tiny_ds.X) == 0).all()


@pytest.mark.parametrize("name", ALL_NAMES)
def test_missing_class_in_training_keeps_width(name, multi_ds):
    mask = multi_ds.y != 2
    clf = make_classifier(name, **FAST_PARAMS[name])
    clf.fit(multi_ds.X[mask], multi_ds.y[mask], n_classes=multi_ds.n_classes)
    proba = clf.predict_proba(multi_ds.X)
    assert proba.shape == (multi_ds.n_instances, multi_ds.n_classes)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_get_params_roundtrip_through_clone(name):
    clf = make_classifier(name, **FAST_PARAMS[name])
    params = clf.get_params()
    dup = clf.clone()
    assert dup.get_params() == params
    assert dup is not clf


@pytest.mark.parametrize("name", ALL_NAMES)
def test_clone_with_overrides(name):
    clf = make_classifier(name, **FAST_PARAMS[name])
    key = next(iter(clf.get_params()))
    dup = clf.clone(**{key: clf.get_params()[key]})
    assert dup.get_params()[key] == clf.get_params()[key]


@pytest.mark.parametrize("name", ALL_NAMES)
def test_deterministic_given_same_data(name, tiny_ds):
    a = _fit(name, tiny_ds).predict_proba(tiny_ds.X)
    b = _fit(name, tiny_ds).predict_proba(tiny_ds.X)
    assert np.allclose(a, b)
