"""Unit + property tests for classification metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    accuracy,
    balanced_accuracy,
    confusion_matrix,
    error_rate,
    log_loss,
    macro_f1,
    precision_recall_f1,
)
from repro.exceptions import DataError


def test_accuracy_basic():
    assert accuracy([0, 1, 1, 0], [0, 1, 0, 0]) == pytest.approx(0.75)


def test_error_rate_is_complement():
    y, p = [0, 1, 2], [0, 2, 2]
    assert accuracy(y, p) + error_rate(y, p) == pytest.approx(1.0)


def test_confusion_matrix_counts():
    m = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
    assert m.tolist() == [[1, 1], [0, 2]]


def test_confusion_matrix_fixed_width():
    m = confusion_matrix([0, 1], [1, 0], n_classes=4)
    assert m.shape == (4, 4)


def test_balanced_accuracy_imbalanced():
    # 9 of class 0 all right, 1 of class 1 wrong -> plain acc 0.9, balanced 0.5
    y = [0] * 9 + [1]
    p = [0] * 10
    assert accuracy(y, p) == pytest.approx(0.9)
    assert balanced_accuracy(y, p) == pytest.approx(0.5)


def test_precision_recall_f1_values():
    precision, recall, f1 = precision_recall_f1([0, 0, 1, 1], [0, 1, 1, 1])
    assert precision[1] == pytest.approx(2 / 3)
    assert recall[1] == pytest.approx(1.0)
    assert f1[1] == pytest.approx(0.8)


def test_macro_f1_ignores_absent_classes():
    # class 2 never occurs in y_true
    score = macro_f1([0, 1, 0, 1], [0, 1, 2, 1])
    assert 0 < score <= 1


def test_log_loss_perfect_prediction_near_zero():
    proba = np.array([[1.0, 0.0], [0.0, 1.0]])
    assert log_loss([0, 1], proba) < 1e-6


def test_log_loss_uniform_is_log_k():
    proba = np.full((4, 4), 0.25)
    assert log_loss([0, 1, 2, 3], proba) == pytest.approx(np.log(4))


def test_log_loss_renormalises():
    proba = np.array([[2.0, 2.0]])
    assert log_loss([0], proba) == pytest.approx(np.log(2))


def test_shape_mismatch_raises():
    with pytest.raises(DataError):
        accuracy([0, 1], [0])


def test_empty_raises():
    with pytest.raises(DataError):
        accuracy([], [])


def test_log_loss_bad_shape_raises():
    with pytest.raises(DataError):
        log_loss([0, 1], np.array([0.5, 0.5]))


def test_log_loss_label_out_of_range_raises():
    with pytest.raises(DataError):
        log_loss([5], np.array([[0.5, 0.5]]))


@settings(max_examples=50, deadline=None)
@given(
    labels=st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=60)
)
def test_property_perfect_prediction_scores_one(labels):
    y = np.array(labels)
    assert accuracy(y, y) == 1.0
    assert error_rate(y, y) == 0.0
    assert balanced_accuracy(y, y) == 1.0


@settings(max_examples=50, deadline=None)
@given(
    y=st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=40),
    p=st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=40),
)
def test_property_confusion_total_and_accuracy(y, p):
    n = min(len(y), len(p))
    y, p = np.array(y[:n]), np.array(p[:n])
    m = confusion_matrix(y, p)
    assert m.sum() == n
    assert accuracy(y, p) == pytest.approx(m.trace() / n)
    assert 0.0 <= accuracy(y, p) <= 1.0
