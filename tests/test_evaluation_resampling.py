"""Unit + property tests for resampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    bootstrap_indices,
    stratified_kfold_indices,
    train_validation_split,
)
from repro.exceptions import ConfigurationError


def test_split_sizes(tiny_ds):
    train, val = train_validation_split(tiny_ds, 0.25, seed=0)
    assert train.n_instances + val.n_instances == tiny_ds.n_instances
    assert val.n_instances == pytest.approx(0.25 * tiny_ds.n_instances, abs=2)


def test_split_stratified(multi_ds):
    train, val = train_validation_split(multi_ds, 0.3, seed=1)
    for k in range(multi_ds.n_classes):
        assert (train.y == k).any()
        assert (val.y == k).any()


def test_split_disjoint_and_complete(tiny_ds):
    train, val = train_validation_split(tiny_ds, 0.2, seed=3)
    combined = np.sort(
        np.concatenate([train.X[:, 0], val.X[:, 0]])
    )
    assert np.allclose(combined, np.sort(tiny_ds.X[:, 0]))


def test_split_deterministic(tiny_ds):
    a = train_validation_split(tiny_ds, 0.25, seed=5)
    b = train_validation_split(tiny_ds, 0.25, seed=5)
    assert np.array_equal(a[0].X, b[0].X)


def test_split_invalid_fraction(tiny_ds):
    with pytest.raises(ConfigurationError):
        train_validation_split(tiny_ds, 0.0)
    with pytest.raises(ConfigurationError):
        train_validation_split(tiny_ds, 1.0)


def test_kfold_partitions_everything(multi_ds):
    folds = stratified_kfold_indices(multi_ds.y, 4, seed=0)
    all_test = np.sort(np.concatenate([test for _, test in folds]))
    assert np.array_equal(all_test, np.arange(multi_ds.n_instances))


def test_kfold_train_test_disjoint(multi_ds):
    for train, test in stratified_kfold_indices(multi_ds.y, 4, seed=0):
        assert not set(train) & set(test)


def test_kfold_stratification(multi_ds):
    folds = stratified_kfold_indices(multi_ds.y, 4, seed=0)
    global_dist = np.bincount(multi_ds.y) / multi_ds.n_instances
    for _, test in folds:
        dist = np.bincount(multi_ds.y[test], minlength=multi_ds.n_classes) / test.size
        assert np.abs(dist - global_dist).max() < 0.2


def test_kfold_reduces_folds_for_rare_class():
    y = np.array([0] * 20 + [1] * 2)
    folds = stratified_kfold_indices(y, 10, seed=0)
    assert len(folds) == 2


def test_kfold_rejects_single_fold():
    with pytest.raises(ConfigurationError):
        stratified_kfold_indices(np.array([0, 1, 0, 1]), 1)


def test_bootstrap_indices_range():
    rng = np.random.default_rng(0)
    idx = bootstrap_indices(10, rng)
    assert idx.shape == (10,)
    assert idx.min() >= 0 and idx.max() < 10


def test_bootstrap_indices_custom_size():
    rng = np.random.default_rng(0)
    assert bootstrap_indices(10, rng, size=4).shape == (4,)


@settings(max_examples=30, deadline=None)
@given(
    counts=st.lists(st.integers(min_value=2, max_value=25), min_size=2, max_size=5),
    n_folds=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_kfold_is_partition(counts, n_folds, seed):
    y = np.concatenate([np.full(c, k) for k, c in enumerate(counts)])
    folds = stratified_kfold_indices(y, n_folds, seed=seed)
    all_test = np.sort(np.concatenate([test for _, test in folds]))
    assert np.array_equal(all_test, np.arange(y.size))
    for train, test in folds:
        assert np.array_equal(np.sort(np.concatenate([train, test])), np.arange(y.size))
