"""Unit + property tests for Box-Cox / Yeo-Johnson (Table 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.data import Dataset
from repro.preprocess import BoxCox, YeoJohnson
from repro.preprocess.power import boxcox_transform, yeojohnson_transform


def _skewed_positive(n=300, seed=0) -> Dataset:
    rng = np.random.default_rng(seed)
    X = np.column_stack([
        rng.lognormal(0, 1, size=n),       # strongly right-skewed, positive
        rng.exponential(2.0, size=n) + 0.1,
    ])
    return Dataset(X=X, y=rng.integers(0, 2, size=n))


def test_boxcox_reduces_skewness():
    ds = _skewed_positive()
    out = BoxCox().fit_transform(ds)
    for j in range(ds.n_features):
        assert abs(stats.skew(out.X[:, j])) < abs(stats.skew(ds.X[:, j]))


def test_boxcox_lambda_zero_is_log():
    x = np.array([1.0, 2.0, 4.0])
    assert np.allclose(boxcox_transform(x, 0.0), np.log(x))


def test_boxcox_lambda_one_is_shift():
    x = np.array([1.0, 2.0, 4.0])
    assert np.allclose(boxcox_transform(x, 1.0), x - 1.0)


def test_boxcox_skips_nonpositive_columns():
    rng = np.random.default_rng(1)
    X = np.column_stack([rng.normal(size=50), rng.lognormal(size=50)])
    ds = Dataset(X=X, y=rng.integers(0, 2, size=50))
    transformer = BoxCox().fit(ds)
    assert 0 not in transformer.lambdas_
    assert 1 in transformer.lambdas_


def test_boxcox_skips_categoricals(mixed_ds):
    transformer = BoxCox().fit(mixed_ds)
    for j in mixed_ds.categorical_indices:
        assert int(j) not in transformer.lambdas_


def test_yeojohnson_handles_negative_values():
    rng = np.random.default_rng(2)
    X = (rng.normal(size=(200, 1)) - 2.0) ** 3  # skewed, mixed sign
    ds = Dataset(X=X, y=rng.integers(0, 2, size=200))
    out = YeoJohnson().fit_transform(ds)
    assert np.isfinite(out.X).all()
    assert abs(stats.skew(out.X[:, 0])) < abs(stats.skew(ds.X[:, 0]))


def test_yeojohnson_lambda_one_is_identity():
    x = np.array([-2.0, -0.5, 0.0, 1.0, 3.0])
    assert np.allclose(yeojohnson_transform(x, 1.0), x)


def test_yeojohnson_matches_scipy_reference():
    x = np.linspace(-2, 3, 11)
    for lam in (0.0, 0.5, 1.5, 2.0):
        ours = yeojohnson_transform(x, lam)
        reference = stats.yeojohnson(x, lmbda=lam)
        assert np.allclose(ours, reference, atol=1e-10)


def test_boxcox_matches_scipy_reference():
    x = np.linspace(0.1, 5, 17)
    for lam in (-0.5, 0.0, 0.5, 2.0):
        ours = boxcox_transform(x, lam)
        reference = stats.boxcox(x, lmbda=lam)
        assert np.allclose(ours, reference, atol=1e-10)


def test_nan_cells_preserved():
    rng = np.random.default_rng(3)
    X = rng.lognormal(size=(60, 1))
    X[5, 0] = np.nan
    ds = Dataset(X=X, y=rng.integers(0, 2, size=60))
    out = YeoJohnson().fit_transform(ds)
    assert np.isnan(out.X[5, 0])


@settings(max_examples=30, deadline=None)
@given(
    lam=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_yeojohnson_monotone(lam, seed):
    rng = np.random.default_rng(seed)
    x = np.sort(rng.normal(scale=2.0, size=30))
    z = yeojohnson_transform(x, lam)
    assert (np.diff(z) >= -1e-9).all()


@settings(max_examples=30, deadline=None)
@given(
    lam=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_boxcox_monotone(lam, seed):
    rng = np.random.default_rng(seed)
    x = np.sort(rng.lognormal(size=30)) + 0.01
    z = boxcox_transform(x, lam)
    assert (np.diff(z) >= -1e-9).all()
