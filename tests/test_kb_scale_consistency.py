"""Consistency of the KB's incremental read caches against cold rebuilds.

The knowledge base keeps a live similarity index and per-dataset
leaderboard cache updated on every append.  These tests assert the scale
contract: any interleaving of appends and queries yields *identical*
nominations, neighbours, and leaderboards to a knowledge base that rebuilds
its caches from a cold store scan — including under concurrent job workers
and across a persistence round-trip.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kb import KnowledgeBase, SimilarityIndex
from repro.kb.similarity import _top_k_stable
from repro.metafeatures import MetaFeatures

ALGORITHMS = ["knn", "rpart", "svm", "random_forest", "lda"]


def _random_mf(rng) -> MetaFeatures:
    return MetaFeatures.from_vector(rng.normal(size=25) * rng.uniform(0.5, 20.0, size=25))


def _random_runs(rng, n_runs: int) -> list[dict]:
    return [
        {
            "algorithm": ALGORITHMS[int(rng.integers(len(ALGORITHMS)))],
            "config": {"p": float(rng.uniform()), "q": int(rng.integers(1, 50))},
            # Coarse accuracies so ties actually happen and exercise the
            # keep-first tie rule of the leaderboard fold.
            "accuracy": round(float(rng.uniform(0.4, 1.0)), 1),
        }
        for _ in range(n_runs)
    ]


def _cold(kb: KnowledgeBase) -> KnowledgeBase:
    """A KB over the same records with none of the caches."""
    return KnowledgeBase(store=kb.store)


# ------------------------------------------------------------ property test


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.sampled_from(["dataset", "run", "batch", "query"]),
        min_size=4,
        max_size=40,
    ),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_interleaved_appends_and_queries_match_cold_rebuild(ops, seed):
    rng = np.random.default_rng(seed)
    kb = KnowledgeBase()
    dataset_ids: list[int] = []
    for op in ops:
        if op == "run" and not dataset_ids:
            op = "dataset"
        if op == "dataset":
            dataset_ids.append(kb.add_dataset(f"d{len(dataset_ids)}", _random_mf(rng)))
        elif op == "run":
            target = dataset_ids[int(rng.integers(len(dataset_ids)))]
            run = _random_runs(rng, 1)[0]
            kb.add_run(target, run["algorithm"], run["config"], run["accuracy"])
        elif op == "batch":
            dataset_ids.append(
                kb.add_result_batch(
                    f"b{len(dataset_ids)}", _random_mf(rng), _random_runs(rng, 3)
                )
            )
        else:  # query — compare every read surface against a cold rebuild
            query = _random_mf(rng)
            cold = _cold(kb)
            k = int(rng.integers(1, 5))
            assert kb.similar_datasets(query, k=k) == cold.similar_datasets(query, k=k)
            for mode in ("weighted", "distance"):
                assert kb.nominate(query, n_algorithms=3, n_neighbors=k, mode=mode) == \
                    cold.nominate(query, n_algorithms=3, n_neighbors=k, mode=mode)
    cold = _cold(kb)
    assert kb.all_leaderboards() == cold.all_leaderboards()
    for dataset_id in dataset_ids:
        assert kb.leaderboard(dataset_id) == cold.leaderboard(dataset_id)


# ----------------------------------------------------------------- top-k


def test_top_k_stable_matches_full_argsort_prefix_with_ties():
    rng = np.random.default_rng(0)
    for _ in range(50):
        n = int(rng.integers(1, 40))
        # Integer-valued distances force plenty of exact ties.
        distances = rng.integers(0, 6, size=n).astype(np.float64)
        for k in (1, 2, 3, n, n + 5):
            expected = np.argsort(distances, kind="stable")[:k]
            got = _top_k_stable(distances, k)
            assert np.array_equal(got, expected), (distances.tolist(), k)


# ------------------------------------------------------------ drift control


def test_zero_drift_threshold_renormalises_on_query_after_append():
    rng = np.random.default_rng(1)
    index = SimilarityIndex([1, 2], rng.normal(size=(2, 4)), drift_threshold=0.0)
    assert index.n_renormalisations == 0
    index.append(3, rng.normal(size=4))
    index.query(rng.normal(size=4), k=2)
    assert index.n_renormalisations == 1
    index.query(rng.normal(size=4), k=2)  # unchanged store: no extra work
    assert index.n_renormalisations == 1


def test_tolerant_drift_threshold_keeps_stale_normaliser():
    rng = np.random.default_rng(2)
    matrix = rng.normal(size=(20, 4))
    index = SimilarityIndex(list(range(20)), matrix, drift_threshold=100.0)
    for i in range(10):
        index.append(100 + i, rng.normal(size=4))
        index.query(rng.normal(size=4), k=3)
    assert index.n_renormalisations == 0  # all appends within tolerance
    # Appended rows are still searchable under the stale normaliser.
    probe = rng.normal(size=4)
    index_ids = {n.dataset_id for n in index.query(probe, k=30)}
    assert set(range(20)) | {100 + i for i in range(10)} == index_ids


def test_drift_past_threshold_triggers_renormalise():
    rng = np.random.default_rng(3)
    index = SimilarityIndex(list(range(10)), rng.normal(size=(10, 4)), drift_threshold=0.5)
    index.append(99, np.full(4, 1e6))  # far outside the distribution
    index.query(rng.normal(size=4), k=2)
    assert index.n_renormalisations == 1


def test_kb_drift_threshold_forwarded_to_index():
    rng = np.random.default_rng(4)
    kb = KnowledgeBase(drift_threshold=50.0)
    for i in range(6):
        kb.add_dataset(f"d{i}", _random_mf(rng))
        kb.similar_datasets(_random_mf(rng), k=2)
    # First query builds the index; later in-tolerance appends reuse it.
    assert kb._index.drift_threshold == 50.0
    assert kb._index.n_renormalisations == 0


# ---------------------------------------------------------------- stale store


def test_refresh_caches_after_direct_store_mutation():
    rng = np.random.default_rng(5)
    kb = KnowledgeBase()
    dataset_id = kb.add_dataset("d0", _random_mf(rng))
    kb.add_run(dataset_id, "knn", {"k": 3}, accuracy=0.6)
    assert kb.leaderboard(dataset_id)[0][1] == 0.6
    kb.store.append(
        "runs",
        {"dataset_id": dataset_id, "algorithm": "knn", "config": {"k": 9},
         "accuracy": 0.9, "n_folds": 0, "budget_s": 0.0},
    )
    assert kb.leaderboard(dataset_id)[0][1] == 0.6  # cache is honestly stale
    kb.refresh_caches()
    assert kb.leaderboard(dataset_id)[0][1] == 0.9


def test_snapshot_every_rejected_with_passed_store():
    kb = KnowledgeBase()
    with pytest.raises(ValueError, match="snapshot_every"):
        KnowledgeBase(store=kb.store, snapshot_every=10)
    with pytest.raises(ValueError, match="not both"):
        KnowledgeBase("some/path.jsonl", store=kb.store)


# ------------------------------------------------------------- persistence


def test_nominations_identical_across_snapshot_reopen(tmp_path):
    rng = np.random.default_rng(6)
    path = tmp_path / "kb.jsonl"
    queries = [_random_mf(rng) for _ in range(3)]
    with KnowledgeBase(path, snapshot_every=5) as kb:
        for i in range(8):
            kb.add_result_batch(f"d{i}", _random_mf(rng), _random_runs(rng, 2))
        live = [kb.nominate(q) for q in queries]
    assert (tmp_path / "kb.jsonl.snapshot").exists()
    with KnowledgeBase(path) as reopened:
        assert [reopened.nominate(q) for q in queries] == live


# ------------------------------------------------------------- concurrency


class _KBLandingSmartML:
    """Stub pipeline: lands one experiment through kb_sink, reads the KB."""

    def __init__(self):
        self.kb = KnowledgeBase()

    def run(self, dataset, config, on_phase=None, kb_sink=None):
        rng = np.random.default_rng(config.seed)
        metafeatures = _random_mf(rng)
        sink = kb_sink if kb_sink is not None else self.kb.add_result_batch
        kb_dataset_id = sink(f"job{config.seed}", metafeatures, _random_runs(rng, 2))
        self.kb.nominate(metafeatures)  # reads race the other worker's writes

        class _Result:
            def to_dict(self_inner):
                return {"kb_dataset_id": kb_dataset_id}

        return _Result()


class _StubDataset:
    name = "stub"


def test_caches_consistent_under_two_concurrent_job_workers():
    from repro.api import JobManager

    stub = _KBLandingSmartML()
    manager = JobManager(stub, workers=2)
    try:
        jobs = [
            manager.submit(_StubDataset(), 1, {"max_evals_per_algorithm": 1,
                                               "time_budget_s": None, "seed": i})
            for i in range(8)
        ]
        results = [manager.wait(job.job_id, timeout=60) for job in jobs]
    finally:
        manager.shutdown()
    assert all(job.status == "done" for job in results)
    kb = stub.kb
    assert kb.n_datasets() == 8
    assert kb.n_runs() == 16
    rng = np.random.default_rng(123)
    cold = _cold(kb)
    for _ in range(5):
        query = _random_mf(rng)
        assert kb.nominate(query, n_algorithms=3, n_neighbors=3) == \
            cold.nominate(query, n_algorithms=3, n_neighbors=3)
    assert kb.all_leaderboards() == cold.all_leaderboards()


def test_caches_consistent_under_raw_thread_interleaving():
    kb = KnowledgeBase()
    errors: list[Exception] = []

    def worker(tag: int) -> None:
        rng = np.random.default_rng(tag)
        try:
            for i in range(25):
                kb.add_result_batch(f"w{tag}-{i}", _random_mf(rng), _random_runs(rng, 2))
                kb.nominate(_random_mf(rng))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert kb.n_datasets() == 50
    cold = _cold(kb)
    rng = np.random.default_rng(321)
    for _ in range(5):
        query = _random_mf(rng)
        assert kb.nominate(query) == cold.nominate(query)
    assert kb.all_leaderboards() == cold.all_leaderboards()
