"""Serving-grade registry tests: every family round-trips bit-identically.

The registry's contract is stronger than "predictions look similar after a
reload": a registered model must predict **the same bits** after
fit -> save -> load, across registry restarts, with array dtypes and byte
order pinned.  Corruption must fail loudly — a registry that silently
serves a bit-rotted model is worse than one that is down.
"""

import marshal
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classifiers import CLASSIFIER_REGISTRY
from repro.core.result import SmartMLResult
from repro.data import SyntheticSpec, make_dataset
from repro.preprocess import Imputer, Pipeline
from repro.serving import ModelRegistry, decode_state, encode_state
from repro.serving.codec import CodecError
from repro.serving.registry import (
    MODEL_SNAPSHOT_MAGIC,
    ModelNotFoundError,
    RegistryError,
)

#: Cheap hyperparameters per family so fitting all 15 stays fast.
FAMILY_PARAMS = {
    "svm": {},
    "naive_bayes": {},
    "knn": {"k": 3},
    "bagging": {"nbagg": 3},
    "part": {},
    "j48": {},
    "random_forest": {"ntree": 5},
    "c50": {},
    "rpart": {},
    "lda": {},
    "plsda": {},
    "lmt": {"iterations": 3},
    "rda": {},
    "neural_net": {"size": 4, "max_iter": 20},
    "deep_boost": {"num_iter": 3},
}

assert set(FAMILY_PARAMS) == set(CLASSIFIER_REGISTRY), (
    "new classifier family registered without serving round-trip coverage"
)


@pytest.fixture(scope="module")
def problem():
    train = make_dataset(
        SyntheticSpec(name="serving-train", n_instances=90, n_features=6,
                      n_classes=3, class_sep=2.0, seed=29)
    )
    fresh = make_dataset(
        SyntheticSpec(name="serving-fresh", n_instances=40, n_features=6,
                      n_classes=3, class_sep=2.0, seed=31)
    )
    return train, fresh


@pytest.fixture(scope="module")
def fitted(problem):
    """One fitted SmartMLResult per classifier family."""
    train, _ = problem
    pipeline = Pipeline([Imputer()])
    prepared = pipeline.fit_transform(train)
    out = {}
    for name, params in FAMILY_PARAMS.items():
        model = CLASSIFIER_REGISTRY[name](**params)
        model.fit(prepared.X, prepared.y, n_classes=train.n_classes)
        out[name] = SmartMLResult(
            dataset_name=train.name, best_algorithm=name, best_config=dict(params),
            validation_accuracy=0.0, model=model, pipeline=pipeline,
        )
    return out


@pytest.mark.parametrize("family", sorted(FAMILY_PARAMS))
def test_family_roundtrips_bit_identically(family, fitted, problem, tmp_path):
    train, fresh = problem
    result = fitted[family]
    expected = result.predict(fresh)
    expected_proba = result.predict_proba(fresh)

    registry = ModelRegistry(tmp_path / "reg")
    registry.register(f"m-{family}", result, dataset=train)

    # A *fresh* registry over the same directory: nothing cached, every
    # byte comes off disk — this is the server-restart path.
    reloaded = ModelRegistry(tmp_path / "reg").load(f"m-{family}")
    got = reloaded.predict_rows(fresh.X)
    got_proba = reloaded.predict_rows(fresh.X, proba=True)

    assert np.array_equal(expected, got), f"{family}: labels drifted after reload"
    assert expected_proba.dtype == got_proba.dtype
    assert np.array_equal(expected_proba, got_proba), (
        f"{family}: probabilities not bit-identical after reload"
    )


def test_arrays_store_little_endian_and_restore_native():
    # The wire format must be byte-order-pinned so snapshots written on a
    # big-endian host read back identically here and vice versa.
    big = np.arange(6, dtype=">f8").reshape(2, 3)
    tag, (descr, shape, raw) = encode_state(big)
    assert tag == "nd"
    assert descr.startswith("<")
    assert shape == (2, 3)
    restored = decode_state((tag, (descr, shape, raw)))
    assert restored.dtype == np.dtype("<f8").newbyteorder("=")
    assert np.array_equal(restored, big.astype("<f8"))
    assert restored.flags.writeable


@st.composite
def codec_values(draw, depth=2):
    scalars = st.one_of(
        st.none(), st.booleans(), st.integers(-2**40, 2**40),
        st.floats(allow_nan=False), st.text(max_size=20), st.binary(max_size=20),
    )
    arrays = st.builds(
        lambda seed, dt, n: np.random.default_rng(seed).integers(-100, 100, n).astype(dt),
        st.integers(0, 2**16), st.sampled_from(["f8", "f4", "i8", "i4", "u2", "c16"]),
        st.integers(0, 12),
    )
    leaf = st.one_of(scalars, arrays)
    if depth == 0:
        return draw(leaf)
    inner = codec_values(depth=depth - 1)
    return draw(
        st.one_of(
            leaf,
            st.lists(inner, max_size=4),
            st.lists(inner, max_size=3).map(tuple),
            st.dictionaries(st.text(max_size=8), inner, max_size=4),
        )
    )


@settings(max_examples=60, deadline=None)
@given(value=codec_values())
def test_codec_roundtrip_property(value):
    # marshal.dumps in the middle: the encoded tree must really be
    # marshal-compatible, not just walkable.
    restored = decode_state(marshal.loads(marshal.dumps(encode_state(value))))

    def assert_same(a, b):
        if isinstance(a, np.ndarray):
            assert isinstance(b, np.ndarray)
            assert a.dtype == b.dtype and a.shape == b.shape
            assert np.array_equal(a, b)
        elif isinstance(a, dict):
            assert set(a) == set(b)
            for key in a:
                assert_same(a[key], b[key])
        elif isinstance(a, (list, tuple)):
            assert type(a) is type(b) and len(a) == len(b)
            for x, y in zip(a, b):
                assert_same(x, y)
        else:
            assert type(a) is type(b)
            assert a == b or (a != a and b != b)  # NaN-tolerant

    assert_same(value, restored)


def test_codec_refuses_foreign_classes():
    class NotOurs:
        pass

    with pytest.raises(CodecError, match="refusing to serialise"):
        encode_state(NotOurs())


def test_codec_refuses_object_arrays():
    with pytest.raises(CodecError, match="dtype"):
        encode_state(np.array([object()], dtype=object))


def test_decode_refuses_untrusted_module():
    node = ("ob", ("os.path", "join", ("di", ())))
    with pytest.raises(CodecError, match="untrusted module"):
        decode_state(node)


def test_numpy_scalar_keeps_dtype():
    restored = decode_state(encode_state(np.float32(1.5)))
    assert isinstance(restored, np.float32)
    restored64 = decode_state(encode_state(np.float64(2.5)))
    assert isinstance(restored64, np.float64) and restored64 == 2.5


# --------------------------------------------------------------- corruption
def _register_one(tmp_path, fitted, problem):
    train, _ = problem
    registry = ModelRegistry(tmp_path / "reg")
    registry.register("victim", fitted["knn"], dataset=train)
    return tmp_path / "reg" / "victim" / "v1.model"


def test_bit_flip_fails_loudly(tmp_path, fitted, problem):
    path = _register_one(tmp_path, fitted, problem)
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0x40
    path.write_bytes(bytes(blob))
    with pytest.raises(RegistryError, match="CRC32"):
        ModelRegistry(tmp_path / "reg").load("victim")


@pytest.mark.parametrize("keep", [0, 3, 19, 100])
def test_truncation_fails_loudly(tmp_path, fitted, problem, keep):
    path = _register_one(tmp_path, fitted, problem)
    path.write_bytes(path.read_bytes()[:keep])
    with pytest.raises(RegistryError, match="truncated|CRC32"):
        ModelRegistry(tmp_path / "reg").load("victim")


def test_schema_version_mismatch_rejected(tmp_path, fitted, problem):
    path = _register_one(tmp_path, fitted, problem)
    blob = bytearray(path.read_bytes())
    # Rewrite the u32 format field (bytes 4..8) to a future version.
    struct.pack_into("<I", blob, 4, 999)
    path.write_bytes(bytes(blob))
    with pytest.raises(RegistryError, match="schema version 999"):
        ModelRegistry(tmp_path / "reg").load("victim")


def test_wrong_magic_rejected(tmp_path, fitted, problem):
    path = _register_one(tmp_path, fitted, problem)
    blob = bytearray(path.read_bytes())
    assert bytes(blob[:4]) == MODEL_SNAPSHOT_MAGIC
    blob[:4] = b"NOPE"
    path.write_bytes(bytes(blob))
    with pytest.raises(RegistryError, match="magic"):
        ModelRegistry(tmp_path / "reg").load("victim")


# ------------------------------------------------------------ registry API
@pytest.mark.parametrize(
    "bad_id",
    ["", "../escape", "a/b", "a\\b", ".hidden", "x" * 65, "sp ace", None, 7],
)
def test_unsafe_model_ids_rejected(bad_id):
    with pytest.raises(RegistryError, match="invalid model id"):
        ModelRegistry.validate_model_id(bad_id)


def test_versioning_and_pinned_loads(tmp_path, fitted, problem):
    train, fresh = problem
    registry = ModelRegistry(tmp_path / "reg")
    registry.register("m", fitted["lda"], dataset=train)
    registry.register("m", fitted["naive_bayes"], dataset=train)
    assert registry.info("m")["versions"] == [1, 2]
    assert registry.load("m").metadata["algorithm"] == "naive_bayes"
    assert registry.load("m", version=1).metadata["algorithm"] == "lda"
    with pytest.raises(ModelNotFoundError):
        registry.load("m", version=3)


def test_delete_removes_every_version(tmp_path, fitted, problem):
    train, _ = problem
    registry = ModelRegistry(tmp_path / "reg")
    registry.register("m", fitted["lda"], dataset=train)
    registry.register("m", fitted["lda"], dataset=train)
    assert registry.delete("m")["deleted_versions"] == [1, 2]
    with pytest.raises(ModelNotFoundError):
        registry.load("m")
    assert not (tmp_path / "reg" / "m").exists()


def test_lru_eviction_keeps_serving(tmp_path, fitted, problem):
    train, fresh = problem
    registry = ModelRegistry(tmp_path / "reg", cache_size=1)
    registry.register("a", fitted["lda"], dataset=train)
    registry.register("b", fitted["rda"], dataset=train)
    expected_a = fitted["lda"].predict_proba(fresh)
    for _ in range(3):  # a,b alternate: every load past the first evicts
        assert np.array_equal(registry.load("a").predict_rows(fresh.X, proba=True),
                              expected_a)
        registry.load("b")
    info = registry.cache_info()
    assert info["capacity"] == 1 and info["size"] == 1
    assert info["evictions"] >= 3


def test_in_memory_registry_roundtrips(fitted, problem):
    train, fresh = problem
    registry = ModelRegistry()  # no root: same framing, no disk
    registry.register("m", fitted["rpart"], dataset=train)
    expected = fitted["rpart"].predict_proba(fresh)
    assert np.array_equal(registry.load("m").predict_rows(fresh.X, proba=True),
                          expected)


def test_row_width_validated_against_training(fitted, problem, tmp_path):
    train, fresh = problem
    registry = ModelRegistry(tmp_path / "reg")
    registry.register("m", fitted["knn"], dataset=train)
    with pytest.raises(RegistryError, match="features"):
        registry.load("m").predict_rows(fresh.X[:, :3])


def test_register_unfitted_result_rejected():
    bare = SmartMLResult(dataset_name="x", best_algorithm="knn", best_config={},
                         validation_accuracy=0.0, model=None)
    with pytest.raises(RegistryError, match="no fitted pipeline"):
        ModelRegistry().register("m", bare)
