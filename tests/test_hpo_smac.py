"""Unit + integration tests for SMAC, racing, random search, and budgets."""

import numpy as np
import pytest

from repro.classifiers import make_classifier
from repro.exceptions import SearchError
from repro.hpo import (
    SMAC,
    CrossValObjective,
    Float,
    ParamSpace,
    RandomSearch,
    SMACSettings,
    allocate_budget,
    classifier_space,
    uniform_budget,
)


def _synthetic_objective(space: ParamSpace):
    """Analytic objective so the whole test is milliseconds: (x-0.7)^2."""

    class FakeObjective:
        n_folds = 3
        n_fold_evaluations = 0

        def __init__(self):
            self._cache = {}

        def evaluate_fold(self, config, key, fold_id):
            per = self._cache.setdefault(key, {})
            if fold_id not in per:
                noise = 0.01 * np.sin(fold_id * 17.0)
                per[fold_id] = (config["x"] - 0.7) ** 2 + noise
                self.n_fold_evaluations += 1
            return per[fold_id]

        def evaluate(self, config, key, fold_ids=None):
            fold_ids = fold_ids if fold_ids is not None else range(self.n_folds)
            return float(np.mean([self.evaluate_fold(config, key, f) for f in fold_ids]))

        def known_mean(self, key):
            per = self._cache.get(key)
            return float(np.mean(list(per.values()))) if per else None

        def evaluated_folds(self, key):
            return sorted(self._cache.get(key, {}))

    return FakeObjective()


def _x_space():
    return ParamSpace([Float("x", 0.0, 1.0, default=0.0)])


def test_settings_require_some_budget():
    with pytest.raises(SearchError):
        SMACSettings()


def test_smac_converges_near_optimum():
    space = _x_space()
    objective = _synthetic_objective(space)
    result = SMAC(space, SMACSettings(max_config_evals=60, seed=0)).optimize(objective)
    assert abs(result.incumbent["x"] - 0.7) < 0.1
    assert result.incumbent_cost < 0.02


def test_smac_beats_default_config():
    space = _x_space()
    objective = _synthetic_objective(space)
    default_cost = objective.evaluate(space.default_config(), space.config_key(space.default_config()))
    result = SMAC(space, SMACSettings(max_config_evals=30, seed=1)).optimize(objective)
    assert result.incumbent_cost < default_cost


def test_smac_beats_random_search_on_average():
    space = _x_space()
    smac_costs, random_costs = [], []
    for seed in range(5):
        smac_costs.append(
            SMAC(space, SMACSettings(max_config_evals=25, seed=seed))
            .optimize(_synthetic_objective(space)).incumbent_cost
        )
        random_costs.append(
            RandomSearch(space, max_config_evals=25, seed=seed)
            .optimize(_synthetic_objective(space)).incumbent_cost
        )
    assert np.mean(smac_costs) <= np.mean(random_costs) + 1e-3


def test_warm_start_seeds_the_queue():
    space = _x_space()
    objective = _synthetic_objective(space)
    result = SMAC(space, SMACSettings(max_config_evals=3, seed=2)).optimize(
        objective, initial_configs=[{"x": 0.69}]
    )
    # With only 3 evals the warm config must have been tried and should win.
    assert abs(result.incumbent["x"] - 0.69) < 1e-9


def test_warm_start_invalid_config_skipped():
    space = _x_space()
    objective = _synthetic_objective(space)
    result = SMAC(space, SMACSettings(max_config_evals=5, seed=3)).optimize(
        objective, initial_configs=[{"x": 99.0}]  # out of bounds
    )
    assert result.n_config_evals == 5  # run proceeded normally


def test_history_records_every_config():
    space = _x_space()
    objective = _synthetic_objective(space)
    result = SMAC(space, SMACSettings(max_config_evals=12, seed=4)).optimize(objective)
    assert len(result.history) == 12
    assert result.history[0].was_incumbent  # first eval always promotes


def test_trajectory_monotone_decreasing():
    space = _x_space()
    objective = _synthetic_objective(space)
    result = SMAC(space, SMACSettings(max_config_evals=40, seed=5)).optimize(objective)
    costs = [cost for _, cost in result.trajectory()]
    assert all(b < a for a, b in zip(costs, costs[1:]))


def test_racing_saves_fold_evaluations():
    space = _x_space()
    objective = _synthetic_objective(space)
    result = SMAC(space, SMACSettings(max_config_evals=40, seed=6)).optimize(objective)
    # Without racing every config costs n_folds evals; racing must beat that.
    assert objective.n_fold_evaluations < 40 * objective.n_folds


def test_real_objective_with_caching(multi_ds):
    space = classifier_space("rpart")
    objective = CrossValObjective(
        lambda config: make_classifier("rpart", **config),
        multi_ds.X, multi_ds.y, n_classes=multi_ds.n_classes, n_folds=3, seed=0,
    )
    config = space.default_config()
    key = space.config_key(config)
    first = objective.evaluate(config, key)
    evals_after_first = objective.n_fold_evaluations
    second = objective.evaluate(config, key)
    assert first == second
    assert objective.n_fold_evaluations == evals_after_first  # fully cached


def test_smac_on_real_classifier_improves(multi_ds):
    space = classifier_space("knn")
    objective = CrossValObjective(
        lambda config: make_classifier("knn", **config),
        multi_ds.X, multi_ds.y, n_classes=multi_ds.n_classes, n_folds=3, seed=0,
    )
    default_cost = objective.evaluate(
        space.default_config(), space.config_key(space.default_config())
    )
    result = SMAC(space, SMACSettings(max_config_evals=15, seed=7)).optimize(objective)
    assert result.incumbent_cost <= default_cost


def test_time_budget_roughly_respected(multi_ds):
    space = classifier_space("knn")
    objective = CrossValObjective(
        lambda config: make_classifier("knn", **config),
        multi_ds.X, multi_ds.y, n_classes=multi_ds.n_classes, n_folds=2, seed=0,
    )
    result = SMAC(space, SMACSettings(time_budget_s=0.5, seed=8)).optimize(objective)
    assert result.elapsed_s < 5.0
    assert result.n_config_evals >= 1


def test_random_search_respects_eval_cap():
    space = _x_space()
    objective = _synthetic_objective(space)
    result = RandomSearch(space, max_config_evals=9, seed=0).optimize(objective)
    assert result.n_config_evals == 9


# ------------------------------------------------------------------ budgets
def test_allocate_budget_proportional_to_param_count():
    budgets = allocate_budget(30.0, ["svm", "knn"])  # 5 vs 1 params
    assert budgets["svm"] == pytest.approx(25.0)
    assert budgets["knn"] == pytest.approx(5.0)
    assert sum(budgets.values()) == pytest.approx(30.0)


def test_uniform_budget_equal_split():
    budgets = uniform_budget(30.0, ["svm", "knn", "lda"])
    assert all(v == pytest.approx(10.0) for v in budgets.values())


def test_budget_validations():
    from repro.exceptions import ConfigurationError
    with pytest.raises(ConfigurationError):
        allocate_budget(0.0, ["knn"])
    with pytest.raises(ConfigurationError):
        allocate_budget(5.0, [])
