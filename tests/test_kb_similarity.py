"""Unit tests for dataset similarity and algorithm nomination."""

import numpy as np
import pytest

from repro.kb import (
    Neighbor,
    distance_only_nomination,
    nearest_datasets,
    weighted_nomination,
    zscore_normaliser,
)


def test_zscore_normaliser_handles_constant_columns():
    matrix = np.column_stack([np.ones(5), np.arange(5.0)])
    mean, std = zscore_normaliser(matrix)
    assert std[0] == 1.0
    assert std[1] > 0


def test_nearest_datasets_orders_by_distance():
    stored = np.array([[0.0, 0.0], [1.0, 1.0], [10.0, 10.0]])
    neighbors = nearest_datasets(np.array([0.1, 0.1]), [7, 8, 9], stored, k=3)
    assert [n.dataset_id for n in neighbors] == [7, 8, 9]
    assert neighbors[0].distance < neighbors[1].distance < neighbors[2].distance


def test_similarity_bounded_unit():
    stored = np.array([[0.0], [100.0]])
    neighbors = nearest_datasets(np.array([0.0]), [1, 2], stored, k=2)
    for n in neighbors:
        assert 0.0 < n.similarity <= 1.0


def test_nearest_empty_store():
    assert nearest_datasets(np.array([1.0]), [], np.zeros((0, 1)), k=3) == []


def test_k_larger_than_store():
    stored = np.array([[0.0], [1.0]])
    assert len(nearest_datasets(np.array([0.0]), [1, 2], stored, k=10)) == 2


def _leaderboards():
    return {
        1: [("rf", 0.9, {"ntree": 50}), ("svm", 0.7, {"cost": 1.0})],
        2: [("knn", 0.8, {"k": 5}), ("rf", 0.6, {"ntree": 10})],
        3: [("lda", 0.95, {"method": "mle"})],
    }


def test_weighted_nomination_prefers_similar_and_strong():
    neighbors = [
        Neighbor(1, distance=0.1, similarity=0.9),
        Neighbor(2, distance=2.0, similarity=0.3),
    ]
    nominations = weighted_nomination(neighbors, _leaderboards(), n_algorithms=2)
    assert nominations[0].algorithm == "rf"  # strong on the very similar ds
    scores = [n.score for n in nominations]
    assert scores == sorted(scores, reverse=True)


def test_weighted_nomination_magnitude_factor():
    # One extremely similar dataset should dominate many distant ones —
    # the paper's 'top n of a single very similar dataset' behaviour.
    neighbors = [Neighbor(1, 0.05, 0.95)] + [
        Neighbor(3, 5.0, 1 / 6) for _ in range(3)
    ]
    nominations = weighted_nomination(neighbors, _leaderboards(), n_algorithms=2)
    chosen = {n.algorithm for n in nominations}
    assert chosen == {"rf", "svm"}  # both from dataset 1, not lda from ds 3


def test_weighted_nomination_collects_warm_configs():
    neighbors = [Neighbor(1, 0.1, 0.9), Neighbor(2, 0.2, 0.8)]
    nominations = weighted_nomination(neighbors, _leaderboards(), n_algorithms=1)
    rf = nominations[0]
    assert rf.algorithm == "rf"
    assert {"ntree": 50} in rf.warm_configs
    assert {"ntree": 10} in rf.warm_configs
    assert rf.supporting_datasets == [1, 2]


def test_weighted_nomination_dedupes_warm_configs():
    boards = {1: [("rf", 0.9, {"ntree": 50})], 2: [("rf", 0.8, {"ntree": 50})]}
    neighbors = [Neighbor(1, 0.1, 0.9), Neighbor(2, 0.2, 0.8)]
    nominations = weighted_nomination(neighbors, boards, n_algorithms=1)
    assert nominations[0].warm_configs == [{"ntree": 50}]


def test_weighted_nomination_empty_neighbors():
    assert weighted_nomination([], _leaderboards(), 3) == []


def test_distance_only_takes_best_per_neighbor():
    neighbors = [Neighbor(2, 0.1, 0.9), Neighbor(1, 0.5, 0.6)]
    nominations = distance_only_nomination(neighbors, _leaderboards(), 2)
    assert [n.algorithm for n in nominations] == ["knn", "rf"]


def test_distance_only_skips_duplicates():
    boards = {1: [("rf", 0.9, {})], 2: [("rf", 0.8, {})], 3: [("lda", 0.7, {})]}
    neighbors = [Neighbor(1, 0.1, 0.9), Neighbor(2, 0.2, 0.8), Neighbor(3, 0.3, 0.7)]
    nominations = distance_only_nomination(neighbors, boards, 3)
    assert [n.algorithm for n in nominations] == ["rf", "lda"]
