"""Tests for the budget-split option, bootstrap subsampling, and tiny budgets."""

import numpy as np
import pytest

from repro import KnowledgeBase, SmartML, SmartMLConfig, bootstrap_knowledge_base
from repro.classifiers import make_classifier
from repro.data import SyntheticSpec, make_dataset
from repro.exceptions import ConfigurationError
from repro.hpo import SMAC, CrossValObjective, SMACSettings, classifier_space


@pytest.fixture
def small_ds():
    return make_dataset(
        SyntheticSpec(name="opt", n_instances=80, n_features=5, n_classes=2,
                      class_sep=2.0, seed=51)
    )


def test_budget_split_config_validation():
    with pytest.raises(ConfigurationError):
        SmartMLConfig(budget_split="fair-ish")
    config = SmartMLConfig(budget_split="uniform")
    assert SmartMLConfig.from_dict(config.to_dict()).budget_split == "uniform"


@pytest.mark.parametrize("split", ["proportional", "uniform"])
def test_budget_split_modes_run(split, small_ds):
    config = SmartMLConfig(
        time_budget_s=1.5,
        budget_split=split,
        n_folds=2,
        fallback_portfolio=["knn", "rpart"],
        n_algorithms=2,
        seed=0,
    )
    result = SmartML().run(small_ds, config)
    assert 0.0 <= result.validation_accuracy <= 1.0


def test_bootstrap_max_instances_caps_probing():
    kb = KnowledgeBase()
    big = make_dataset(
        SyntheticSpec(name="big", n_instances=300, n_features=4, n_classes=2, seed=3)
    )
    bootstrap_knowledge_base(
        kb, [big], algorithms=["knn"], configs_per_algorithm=1,
        n_folds=2, max_instances=60,
    )
    # Meta-features must still describe the FULL dataset.
    _, data = kb.store.scan("datasets")[0]
    assert data["metafeatures"]["n_instances"] == 300.0
    assert kb.n_runs() == 1


def test_smac_tiny_budget_yields_partial_incumbent(small_ds):
    import time as time_module

    space = classifier_space("knn")
    objective = CrossValObjective(
        lambda config: make_classifier("knn", **config),
        small_ds.X, small_ds.y, n_classes=2, n_folds=3, seed=0,
    )
    # Make each fold evaluation cost ~60ms so a 70ms budget admits the
    # first fold of the first config but not the remaining two: the run
    # must return a *partially validated* incumbent rather than crash.
    original = objective.evaluate_fold

    def slow_evaluate_fold(config, key, fold_id):
        time_module.sleep(0.06)
        return original(config, key, fold_id)

    objective.evaluate_fold = slow_evaluate_fold
    result = SMAC(space, SMACSettings(time_budget_s=0.07, seed=0)).optimize(objective)
    assert result.incumbent is not None
    assert result.n_config_evals == 1
    assert 1 <= result.history[0].n_folds < objective.n_folds


def test_smac_zero_history_fallback():
    # max_config_evals=0 -> no evaluation at all -> default config fallback.
    space = classifier_space("knn")
    objective = CrossValObjective(
        lambda config: make_classifier("knn", **config),
        np.random.default_rng(0).normal(size=(30, 3)),
        np.random.default_rng(0).integers(0, 2, size=30),
        n_classes=2, n_folds=2, seed=0,
    )
    result = SMAC(space, SMACSettings(max_config_evals=0, seed=0)).optimize(objective)
    assert result.incumbent == space.default_config()
    assert result.stop_reason == "budget_before_first_eval"
    assert np.isnan(result.incumbent_cost)
