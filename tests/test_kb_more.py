"""Additional knowledge-base scenarios: lifecycle, durability, scale."""

import numpy as np

from repro.data import SyntheticSpec, make_dataset
from repro.kb import KnowledgeBase
from repro.metafeatures import extract_metafeatures


def _mf(seed=0, **kwargs):
    defaults = dict(name=f"m{seed}", n_instances=50, n_features=4, n_classes=2, seed=seed)
    defaults.update(kwargs)
    return extract_metafeatures(make_dataset(SyntheticSpec(**defaults)))


def test_kb_compaction_preserves_nominations(tmp_path):
    path = tmp_path / "kb.jsonl"
    with KnowledgeBase(path) as kb:
        for i in range(4):
            dataset_id = kb.add_dataset(f"d{i}", _mf(i))
            kb.add_run(dataset_id, "knn", {"k": i + 1}, accuracy=0.6 + 0.05 * i)
        before = [n.algorithm for n in kb.nominate(_mf(99), n_algorithms=2)]
        kb.compact()
        after = [n.algorithm for n in kb.nominate(_mf(99), n_algorithms=2)]
        assert before == after
    with KnowledgeBase(path) as reopened:
        assert reopened.n_datasets() == 4
        assert reopened.n_runs() == 4


def test_kb_many_runs_per_dataset_leaderboard_is_max(tmp_path):
    kb = KnowledgeBase()
    dataset_id = kb.add_dataset("d", _mf(0))
    rng = np.random.default_rng(0)
    best = -1.0
    for _ in range(50):
        accuracy = float(rng.uniform(0.3, 0.9))
        best = max(best, accuracy)
        kb.add_run(dataset_id, "rpart", {"cp": 0.01, "minsplit": 5,
                                         "minbucket": 2, "maxdepth": 8},
                   accuracy=accuracy)
    board = kb.leaderboard(dataset_id)
    assert len(board) == 1
    assert board[0][1] == best


def test_kb_nominate_more_algorithms_than_known():
    kb = KnowledgeBase()
    dataset_id = kb.add_dataset("d", _mf(0))
    kb.add_run(dataset_id, "knn", {"k": 3}, accuracy=0.8)
    nominations = kb.nominate(_mf(1), n_algorithms=10)
    assert len(nominations) == 1  # can't invent algorithms it never saw


def test_kb_growth_improves_similarity_resolution():
    # With more stored datasets, the nearest neighbour of a query gets
    # strictly closer (in z-scored distance) or stays equal.
    kb = KnowledgeBase()
    query = _mf(500, n_instances=80, n_features=6, n_classes=3)
    distances = []
    for i in range(12):
        kb.add_dataset(
            f"d{i}",
            _mf(i, n_instances=40 + 10 * i, n_features=3 + (i % 5), n_classes=2 + (i % 3)),
        )
        neighbors = kb.similar_datasets(query, k=1)
        distances.append(neighbors[0].distance)
    assert min(distances[6:]) <= min(distances[:3]) + 1e-9


def test_kb_runs_with_zero_accuracy_are_kept():
    kb = KnowledgeBase()
    dataset_id = kb.add_dataset("d", _mf(0))
    kb.add_run(dataset_id, "svm", {"kernel": "linear", "cost": 1.0,
                                   "gamma": 0.1, "degree": 3, "coef0": 0.0},
               accuracy=0.0)
    assert kb.leaderboard(dataset_id)[0][1] == 0.0


def test_kb_close_is_idempotent(tmp_path):
    kb = KnowledgeBase(tmp_path / "kb.jsonl")
    kb.add_dataset("d", _mf(0))
    kb.close()
    kb.close()  # must not raise
