"""Shared fixtures: small, fast, deterministic datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset, SyntheticSpec, make_dataset


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def tiny_ds() -> Dataset:
    """Binary, 80 instances, 5 numeric features, well separated."""
    return make_dataset(
        SyntheticSpec(
            name="tiny", n_instances=80, n_features=5, n_classes=2,
            n_informative=3, class_sep=2.5, seed=7,
        )
    )


@pytest.fixture
def multi_ds() -> Dataset:
    """3 classes, 120 instances, 6 features, moderate difficulty."""
    return make_dataset(
        SyntheticSpec(
            name="multi", n_instances=120, n_features=6, n_classes=3,
            n_informative=4, class_sep=1.8, label_noise=0.05, seed=11,
        )
    )


@pytest.fixture
def mixed_ds() -> Dataset:
    """Mixed numeric/categorical features with missing cells."""
    return make_dataset(
        SyntheticSpec(
            name="mixed", n_instances=100, n_features=8, n_classes=3,
            n_informative=5, class_sep=1.6, n_categorical=3,
            missing_ratio=0.05, skew=0.4, imbalance=0.7, seed=13,
        )
    )


@pytest.fixture
def hard_ds() -> Dataset:
    """Nearly unlearnable: heavy label noise, weak separation."""
    return make_dataset(
        SyntheticSpec(
            name="hard", n_instances=90, n_features=4, n_classes=2,
            n_informative=1, class_sep=0.2, label_noise=0.4, seed=17,
        )
    )
