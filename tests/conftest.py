"""Shared fixtures (small, fast, deterministic datasets) and a hang guard.

``--timeout <seconds>`` arms a per-test watchdog built on
:func:`faulthandler.dump_traceback_later`: a test that exceeds the limit
gets every thread's traceback dumped to stderr and the process exits —
turning a silent CI hang (a deadlocked worker, a stuck drain) into a
diagnosable failure.  Implemented locally so the suite has no dependency
on the ``pytest-timeout`` plugin.
"""

from __future__ import annotations

import faulthandler

import numpy as np
import pytest

from repro.data import Dataset, SyntheticSpec, make_dataset


def pytest_addoption(parser):
    parser.addoption(
        "--timeout",
        type=float,
        default=None,
        help="per-test hang guard in seconds: dump all thread tracebacks "
        "and abort the run when a single test exceeds this limit",
    )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_protocol(item, nextitem):
    timeout = item.config.getoption("--timeout")
    if not timeout or timeout <= 0:
        return (yield)
    faulthandler.dump_traceback_later(timeout, exit=True)
    try:
        return (yield)
    finally:
        faulthandler.cancel_dump_traceback_later()


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def tiny_ds() -> Dataset:
    """Binary, 80 instances, 5 numeric features, well separated."""
    return make_dataset(
        SyntheticSpec(
            name="tiny", n_instances=80, n_features=5, n_classes=2,
            n_informative=3, class_sep=2.5, seed=7,
        )
    )


@pytest.fixture
def multi_ds() -> Dataset:
    """3 classes, 120 instances, 6 features, moderate difficulty."""
    return make_dataset(
        SyntheticSpec(
            name="multi", n_instances=120, n_features=6, n_classes=3,
            n_informative=4, class_sep=1.8, label_noise=0.05, seed=11,
        )
    )


@pytest.fixture
def mixed_ds() -> Dataset:
    """Mixed numeric/categorical features with missing cells."""
    return make_dataset(
        SyntheticSpec(
            name="mixed", n_instances=100, n_features=8, n_classes=3,
            n_informative=5, class_sep=1.6, n_categorical=3,
            missing_ratio=0.05, skew=0.4, imbalance=0.7, seed=13,
        )
    )


@pytest.fixture
def hard_ds() -> Dataset:
    """Nearly unlearnable: heavy label noise, weak separation."""
    return make_dataset(
        SyntheticSpec(
            name="hard", n_instances=90, n_features=4, n_classes=2,
            n_informative=1, class_sep=0.2, label_noise=0.4, seed=17,
        )
    )
