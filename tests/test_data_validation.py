"""Dataset validation: machine-readable lint for hostile uploads."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.validation import ensure_valid_dataset, validate_dataset
from repro.exceptions import DatasetValidationError


def _ds(X, y, categorical=None, name="lint"):
    return Dataset(
        X=np.asarray(X, dtype=np.float64),
        y=np.asarray(y, dtype=np.int64),
        categorical_mask=categorical,
        name=name,
    )


def _good(n=30, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = (X[:, 0] > 0).astype(np.int64)
    y[0], y[1] = 0, 1  # both classes always observed
    return _ds(X, y)


def _codes(report, severity=None):
    issues = report.issues if severity is None else getattr(report, severity)
    return {i.code for i in issues}


# ------------------------------------------------------------------ errors
def test_clean_dataset_passes():
    report = validate_dataset(_good(), n_folds=3)
    assert report.ok
    assert report.errors == []
    assert report.to_dict()["ok"] is True


def test_single_class_target_is_error():
    ds = _ds(np.random.default_rng(0).normal(size=(20, 3)), np.zeros(20, dtype=int))
    report = validate_dataset(ds, n_folds=2)
    assert not report.ok
    assert "single_class_target" in _codes(report, "errors")


def test_too_few_rows_is_error():
    ds = _ds([[1.0], [2.0]], [0, 1])
    report = validate_dataset(ds, n_folds=3)
    assert "too_few_rows" in _codes(report, "errors")


def test_class_below_fold_count_is_error():
    ds = _good(n=20)
    ds.y[:] = 0
    ds.y[0] = 1  # one lonely member of class 1
    report = validate_dataset(ds, n_folds=2)
    assert "class_below_fold_count" in _codes(report, "errors")


def test_inf_values_is_error():
    ds = _good()
    ds.X[3, 1] = np.inf
    ds.X[4, 2] = -np.inf
    report = validate_dataset(ds)
    assert "inf_values" in _codes(report, "errors")
    issue = next(i for i in report.errors if i.code == "inf_values")
    assert sorted(issue.detail["columns"]) == [1, 2]


# ---------------------------------------------------------------- warnings
def test_constant_and_all_nan_columns_warn():
    ds = _good()
    ds.X[:, 1] = 7.0          # constant
    ds.X[:, 2] = np.nan       # entirely missing
    report = validate_dataset(ds)
    assert report.ok  # warnings never block
    issue = next(i for i in report.warnings if i.code == "constant_columns")
    assert set(issue.detail["columns"]) == {1, 2}


def test_extreme_cardinality_warns():
    n = 40
    rng = np.random.default_rng(1)
    X = rng.normal(size=(n, 2))
    X[:, 1] = np.arange(n)  # one symbol per row
    y = (X[:, 0] > 0).astype(np.int64)
    y[0], y[1] = 0, 1
    ds = _ds(X, y, categorical=np.array([False, True]))
    report = validate_dataset(ds)
    assert "extreme_cardinality" in _codes(report, "warnings")


def test_heavy_missingness_warns():
    ds = _good(n=40)
    rng = np.random.default_rng(2)
    ds.X[rng.random(ds.X.shape) < 0.5] = np.nan
    report = validate_dataset(ds)
    assert "heavy_missingness" in _codes(report, "warnings")


def test_validation_never_raises_on_hostile_numerics():
    ds = _good()
    ds.X[0, 0] = np.inf
    ds.X[1, 1] = -np.inf
    ds.X[:, 2] = np.nan
    ds.X[5, 3] = 1e308
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        report = validate_dataset(ds)
    assert not report.ok


# -------------------------------------------------------------- enforcement
def test_raise_if_errors_carries_structured_report():
    ds = _ds(np.ones((5, 2)), np.zeros(5, dtype=int))
    with pytest.raises(DatasetValidationError) as err:
        ensure_valid_dataset(ds, n_folds=2)
    exc = err.value
    assert exc.http_status == 400
    payload = exc.payload
    assert payload["validation"]["ok"] is False
    codes = {i["code"] for i in payload["validation"]["errors"]}
    assert "single_class_target" in codes
    # The human message explains the failure in prose.
    assert "single observed class" in str(exc)


def test_ensure_valid_dataset_returns_report_when_clean():
    report = ensure_valid_dataset(_good(), n_folds=3)
    assert report.ok


def test_column_listing_is_capped_but_count_exact():
    n_cols = 50
    X = np.ones((30, n_cols))
    X[:, 0] = np.linspace(0, 1, 30)
    y = (X[:, 0] > 0.5).astype(np.int64)
    report = validate_dataset(_ds(X, y))
    issue = next(i for i in report.warnings if i.code == "constant_columns")
    assert len(issue.detail["columns"]) <= 20
    assert f"{n_cols - 1} column(s)" in issue.message


def test_describe_mentions_every_issue():
    ds = _ds(np.ones((2, 2)), [0, 0])
    report = validate_dataset(ds, n_folds=3)
    text = report.describe()
    for issue in report.issues:
        assert issue.code in text
