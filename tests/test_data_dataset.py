"""Unit tests for the Dataset container."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.exceptions import DataError


def _simple() -> Dataset:
    X = np.array([[1.0, 0.0], [2.0, 1.0], [3.0, 0.0], [np.nan, 1.0]])
    y = np.array([0, 1, 0, 1])
    return Dataset(X=X, y=y, categorical_mask=np.array([False, True]), name="simple")


def test_shapes_and_counts():
    ds = _simple()
    assert ds.n_instances == 4
    assert ds.n_features == 2
    assert ds.n_classes == 2
    assert list(ds.numeric_indices) == [0]
    assert list(ds.categorical_indices) == [1]


def test_default_names_generated():
    ds = Dataset(X=np.zeros((3, 2)), y=np.array([0, 1, 1]))
    assert ds.feature_names == ["f0", "f1"]
    assert ds.class_names == ["c0", "c1"]


def test_class_counts_and_distribution():
    ds = _simple()
    assert list(ds.class_counts()) == [2, 2]
    assert np.allclose(ds.class_distribution(), [0.5, 0.5])


def test_missing_ratio():
    ds = _simple()
    assert ds.missing_ratio() == pytest.approx(1 / 8)


def test_category_cardinalities():
    ds = _simple()
    assert list(ds.category_cardinalities()) == [2]


def test_subset_preserves_schema():
    ds = _simple()
    sub = ds.subset(np.array([0, 2]))
    assert sub.n_instances == 2
    assert sub.n_classes == 2  # class names retained even if absent
    assert list(sub.categorical_mask) == [False, True]


def test_subset_with_boolean_mask():
    ds = _simple()
    sub = ds.subset(np.array([True, False, True, False]))
    assert sub.n_instances == 2


def test_select_features():
    ds = _simple()
    sub = ds.select_features(np.array([1]))
    assert sub.n_features == 1
    assert sub.feature_names == ["f1"]
    assert sub.categorical_mask[0]


def test_select_features_boolean_mask():
    ds = _simple()
    sub = ds.select_features(np.array([True, False]))
    assert sub.feature_names == ["f0"]


def test_copy_is_deep():
    ds = _simple()
    dup = ds.copy()
    dup.X[0, 0] = 99.0
    assert ds.X[0, 0] == 1.0


def test_rejects_mismatched_lengths():
    with pytest.raises(DataError):
        Dataset(X=np.zeros((3, 2)), y=np.array([0, 1]))


def test_rejects_1d_X():
    with pytest.raises(DataError):
        Dataset(X=np.zeros(3), y=np.array([0, 1, 0]))


def test_rejects_empty():
    with pytest.raises(DataError):
        Dataset(X=np.zeros((0, 2)), y=np.array([], dtype=int))


def test_rejects_negative_labels():
    with pytest.raises(DataError):
        Dataset(X=np.zeros((2, 1)), y=np.array([-1, 0]))


def test_rejects_bad_mask_shape():
    with pytest.raises(DataError):
        Dataset(X=np.zeros((2, 2)), y=np.array([0, 1]), categorical_mask=np.array([True]))


def test_rejects_too_few_class_names():
    with pytest.raises(DataError):
        Dataset(X=np.zeros((2, 1)), y=np.array([0, 1]), class_names=["only"])


def test_rejects_wrong_feature_name_count():
    with pytest.raises(DataError):
        Dataset(X=np.zeros((2, 2)), y=np.array([0, 1]), feature_names=["a"])
