"""Tests for the fold-evaluation budget currency."""

import pytest

from repro.baselines import AutoWekaBaseline, RandomSearchCASH
from repro.classifiers import make_classifier
from repro.exceptions import SearchError
from repro.hpo import SMAC, CrossValObjective, RandomSearch, SMACSettings, classifier_space


def _objective(ds, n_folds=3):
    return CrossValObjective(
        lambda config: make_classifier("rpart", **config),
        ds.X, ds.y, n_classes=ds.n_classes, n_folds=n_folds, seed=0,
    )


def test_fold_budget_alone_is_a_valid_setting():
    settings = SMACSettings(max_fold_evals=10)
    assert settings.max_fold_evals == 10


def test_no_budget_at_all_rejected():
    with pytest.raises(SearchError):
        SMACSettings(time_budget_s=None, max_config_evals=None, max_fold_evals=None)


def test_smac_respects_fold_budget(multi_ds):
    objective = _objective(multi_ds)
    space = classifier_space("rpart")
    result = SMAC(space, SMACSettings(max_fold_evals=20, seed=0)).optimize(objective)
    # The budget is checked between configurations; a single race can push
    # at most one configuration's worth of folds past the line.
    assert objective.n_fold_evaluations <= 20 + objective.n_folds
    assert result.n_config_evals >= 3


def test_random_search_respects_fold_budget(multi_ds):
    objective = _objective(multi_ds)
    space = classifier_space("rpart")
    result = RandomSearch(space, max_fold_evals=12, seed=0).optimize(objective)
    assert objective.n_fold_evaluations <= 12 + objective.n_folds
    assert result.n_config_evals >= 1


def test_racing_stretches_fold_budget_over_more_configs(multi_ds):
    budget = 30
    smac_objective = _objective(multi_ds)
    smac_result = SMAC(
        classifier_space("rpart"), SMACSettings(max_fold_evals=budget, seed=1)
    ).optimize(smac_objective)

    random_objective = _objective(multi_ds)
    random_result = RandomSearch(
        classifier_space("rpart"), max_fold_evals=budget, seed=1
    ).optimize(random_objective)

    # Racing rejects losers on partial folds, so the same fold budget covers
    # strictly more configurations than always-full-CV random search.
    assert smac_result.n_config_evals > random_result.n_config_evals


def test_baselines_accept_fold_budgets(multi_ds):
    for cls in (AutoWekaBaseline, RandomSearchCASH):
        result = cls(
            algorithms=["knn", "rpart"], time_budget_s=None,
            max_fold_evals=15, n_folds=3, seed=0,
        ).run(multi_ds)
        assert result.n_config_evals >= 1
        assert 0.0 <= result.validation_accuracy <= 1.0
