"""Integration tests for the REST server + client."""

import pytest

from repro.api import SmartMLClient, SmartMLServer
from repro.core import SmartML
from repro.exceptions import SmartMLError

CSV = "a,b,label\n" + "\n".join(
    f"{i % 7},{(i * 3) % 5},{'yes' if (i % 7) > 3 else 'no'}" for i in range(60)
)

FAST_CONFIG = {
    "time_budget_s": None,
    "max_evals_per_algorithm": 2,
    "n_folds": 2,
    "fallback_portfolio": ["knn", "rpart"],
    "n_algorithms": 2,
}


@pytest.fixture(scope="module")
def server():
    server = SmartMLServer(SmartML())
    server.serve_background()
    yield server
    server.shutdown()


@pytest.fixture(scope="module")
def client(server):
    return SmartMLClient(port=server.port)


def test_health(client):
    assert client.health()["status"] == "ok"


def test_upload_and_list(client):
    info = client.upload_csv(CSV, target="label", name="demo")
    assert info["n_instances"] == 60
    assert info["n_features"] == 2
    assert info["n_classes"] == 2
    listing = client.list_datasets()
    assert any(d["dataset_id"] == info["dataset_id"] for d in listing["datasets"])


def test_upload_arff(client):
    arff = "@relation t\n@attribute x numeric\n@attribute c {a,b}\n@data\n" + "\n".join(
        f"{i},{'a' if i % 2 else 'b'}" for i in range(20)
    )
    info = client.upload_arff(arff, name="arff-demo")
    assert info["n_classes"] == 2


def test_metafeatures_endpoint(client):
    info = client.upload_csv(CSV, target="label", name="mf-demo")
    payload = client.metafeatures(info["dataset_id"])
    assert payload["metafeatures"]["n_instances"] == 60.0
    assert len(payload["metafeatures"]) == 25


def test_experiment_roundtrip(client):
    info = client.upload_csv(CSV, target="label", name="exp-demo")
    result = client.run_experiment(info["dataset_id"], config=FAST_CONFIG)
    assert result["best_algorithm"] in ("knn", "rpart")
    assert 0.0 <= result["validation_accuracy"] <= 1.0
    assert result["candidates"]


def test_kb_stats_grow_after_experiment(client):
    before = client.kb_stats()
    info = client.upload_csv(CSV, target="label", name="kb-demo")
    client.run_experiment(info["dataset_id"], config=FAST_CONFIG)
    after = client.kb_stats()
    assert after["datasets"] == before["datasets"] + 1
    assert after["runs"] > before["runs"]


def test_nominate_from_metafeatures_only(client):
    # The paper's "upload only the dataset meta-features file" mode.
    info = client.upload_csv(CSV, target="label", name="nom-demo")
    client.run_experiment(info["dataset_id"], config=FAST_CONFIG)  # populate KB
    metafeatures = client.metafeatures(info["dataset_id"])["metafeatures"]
    payload = client.nominate(metafeatures, n_algorithms=2)
    assert payload["nominations"]
    assert payload["nominations"][0]["algorithm"]


def test_unknown_dataset_experiment_fails(client):
    with pytest.raises(SmartMLError):
        client.run_experiment(99999, config=FAST_CONFIG)


def test_bad_upload_fails(client):
    with pytest.raises(SmartMLError):
        client._request("POST", "/datasets", {"neither": "csv nor arff"})


def test_unknown_path_404(client):
    with pytest.raises(SmartMLError):
        client._request("GET", "/definitely-not-a-path")


def test_invalid_config_rejected(client):
    info = client.upload_csv(CSV, target="label", name="bad-config")
    with pytest.raises(SmartMLError):
        client.run_experiment(info["dataset_id"], config={"mystery_option": 1})


def test_experiment_post_returns_202_with_job_id(server, client):
    import http.client as http_client
    import json as json_module

    info = client.upload_csv(CSV, target="label", name="status-202")
    connection = http_client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        body = json_module.dumps(
            {"dataset_id": info["dataset_id"], "config": FAST_CONFIG}
        ).encode()
        connection.request(
            "POST", "/experiments", body=body,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = json_module.loads(response.read())
    finally:
        connection.close()
    assert response.status == 202
    assert isinstance(payload["job_id"], int)
    assert payload["status"] in ("queued", "running")
    # Listing shows the job; detail eventually carries the result.
    jobs = client.list_experiments()["jobs"]
    assert any(j["job_id"] == payload["job_id"] for j in jobs)
    result = client.wait_experiment(payload["job_id"], timeout=60)
    assert result["best_algorithm"] in ("knn", "rpart")
