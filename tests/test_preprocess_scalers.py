"""Unit + property tests for center/scale/range/zv (Table 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Dataset
from repro.exceptions import NotFittedError
from repro.preprocess import Center, RangeScaler, Scale, ZeroVarianceFilter


def test_center_zero_mean(tiny_ds):
    out = Center().fit_transform(tiny_ds)
    assert np.allclose(out.X.mean(axis=0), 0.0, atol=1e-10)


def test_scale_unit_std(tiny_ds):
    out = Scale().fit_transform(tiny_ds)
    assert np.allclose(out.X.std(axis=0, ddof=1), 1.0, atol=1e-10)


def test_range_in_unit_interval(tiny_ds):
    out = RangeScaler().fit_transform(tiny_ds)
    assert out.X.min() >= -1e-12
    assert out.X.max() <= 1 + 1e-12


def test_transforms_use_training_statistics(tiny_ds):
    center = Center().fit(tiny_ds)
    shifted = tiny_ds.copy()
    shifted.X = shifted.X + 100.0
    out = center.transform(shifted)
    assert np.allclose(out.X.mean(axis=0), 100.0, atol=1e-8)


def test_categorical_columns_untouched(mixed_ds):
    for transformer in (Center(), Scale(), RangeScaler()):
        out = transformer.fit_transform(mixed_ds)
        for j in mixed_ds.categorical_indices:
            a, b = out.X[:, j], mixed_ds.X[:, j]
            assert np.array_equal(a[~np.isnan(a)], b[~np.isnan(b)])


def test_scale_constant_column_left_alone():
    ds = Dataset(X=np.column_stack([np.ones(5), np.arange(5.0)]), y=np.array([0, 1, 0, 1, 0]))
    out = Scale().fit_transform(ds)
    assert np.allclose(out.X[:, 0], 1.0)


def test_zv_drops_constant_columns():
    ds = Dataset(
        X=np.column_stack([np.ones(6), np.arange(6.0), np.zeros(6)]),
        y=np.array([0, 1] * 3),
    )
    out = ZeroVarianceFilter().fit_transform(ds)
    assert out.n_features == 1
    assert out.feature_names == ["f1"]


def test_zv_keeps_one_column_when_all_constant():
    ds = Dataset(X=np.ones((4, 3)), y=np.array([0, 1, 0, 1]))
    out = ZeroVarianceFilter().fit_transform(ds)
    assert out.n_features == 1


def test_zv_handles_all_nan_column():
    X = np.column_stack([np.full(4, np.nan), np.arange(4.0)])
    ds = Dataset(X=X, y=np.array([0, 1, 0, 1]))
    out = ZeroVarianceFilter().fit_transform(ds)
    assert out.n_features == 1


def test_transform_before_fit_raises(tiny_ds):
    for transformer in (Center(), Scale(), RangeScaler(), ZeroVarianceFilter()):
        with pytest.raises(NotFittedError):
            transformer.transform(tiny_ds)


def test_original_dataset_unchanged(tiny_ds):
    before = tiny_ds.X.copy()
    Center().fit_transform(tiny_ds)
    assert np.array_equal(tiny_ds.X, before)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=5, max_value=60),
    d=st.integers(min_value=1, max_value=6),
)
def test_property_center_then_scale_standardises(seed, n, d):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d)) * rng.uniform(0.5, 5.0, size=d) + rng.normal(size=d)
    y = rng.integers(0, 2, size=n)
    ds = Dataset(X=X, y=y)
    out = Scale().fit_transform(Center().fit_transform(ds))
    stds = out.X.std(axis=0, ddof=1)
    nontrivial = X.std(axis=0, ddof=1) > 1e-12
    assert np.allclose(out.X.mean(axis=0), 0.0, atol=1e-8)
    assert np.allclose(stds[nontrivial], 1.0, atol=1e-8)
