"""Unit tests for the random-forest surrogate and expected improvement."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.hpo import RandomForestSurrogate, RegressionTree, expected_improvement


def _quadratic(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = (X[:, 0] - 0.3) ** 2 + 0.5 * (X[:, 1] + 0.2) ** 2
    return X, y


def test_regression_tree_fits_step_function():
    X = np.linspace(0, 1, 100).reshape(-1, 1)
    y = (X[:, 0] > 0.5).astype(float)
    tree = RegressionTree(max_depth=3).fit(X, y)
    pred = tree.predict(X)
    assert np.abs(pred - y).mean() < 0.05


def test_regression_tree_constant_target():
    X = np.random.default_rng(0).normal(size=(30, 2))
    tree = RegressionTree().fit(X, np.full(30, 2.5))
    assert np.allclose(tree.predict(X), 2.5)


def test_regression_tree_unfitted_raises():
    with pytest.raises(NotFittedError):
        RegressionTree().predict(np.zeros((2, 2)))


def test_surrogate_mean_tracks_function():
    X, y = _quadratic()
    surrogate = RandomForestSurrogate(n_trees=20, seed=0).fit(X, y)
    mean, _ = surrogate.predict(X)
    correlation = np.corrcoef(mean, y)[0, 1]
    assert correlation > 0.9


def test_surrogate_variance_higher_off_data():
    X, y = _quadratic()
    surrogate = RandomForestSurrogate(n_trees=20, seed=0).fit(X, y)
    _, var_in = surrogate.predict(X[:20])
    _, var_out = surrogate.predict(np.full((5, 2), 5.0))  # far outside data
    assert var_out.mean() >= var_in.mean()


def test_surrogate_unfitted_raises():
    with pytest.raises(NotFittedError):
        RandomForestSurrogate().predict(np.zeros((2, 2)))


def test_surrogate_deterministic_given_seed():
    X, y = _quadratic()
    a = RandomForestSurrogate(n_trees=10, seed=3).fit(X, y).predict(X)[0]
    b = RandomForestSurrogate(n_trees=10, seed=3).fit(X, y).predict(X)[0]
    assert np.allclose(a, b)


def test_expected_improvement_zero_when_mean_far_worse():
    ei = expected_improvement(np.array([10.0]), np.array([1e-6]), best=1.0)
    assert ei[0] == pytest.approx(0.0, abs=1e-9)


def test_expected_improvement_positive_when_better():
    ei = expected_improvement(np.array([0.5]), np.array([0.01]), best=1.0)
    assert ei[0] > 0.4


def test_expected_improvement_grows_with_variance():
    mean = np.array([1.0, 1.0])
    var = np.array([1e-6, 1.0])
    ei = expected_improvement(mean, var, best=1.0)
    assert ei[1] > ei[0]


def test_expected_improvement_non_negative_everywhere():
    rng = np.random.default_rng(1)
    ei = expected_improvement(rng.normal(size=100), rng.uniform(0, 2, 100), best=0.0)
    assert (ei >= 0).all()
