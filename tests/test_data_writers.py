"""Round-trip tests for the CSV/ARFF writers."""

import numpy as np
import pytest

from repro.data import (
    dataset_to_arff,
    dataset_to_csv,
    parse_arff_text,
    parse_csv_text,
    read_arff,
    read_csv,
    write_arff,
    write_csv,
)


def test_csv_roundtrip_numeric(tiny_ds):
    text = dataset_to_csv(tiny_ds)
    back = parse_csv_text(text, target="label")
    assert back.n_instances == tiny_ds.n_instances
    assert back.n_features == tiny_ds.n_features
    assert np.allclose(back.X, tiny_ds.X)
    assert np.array_equal(back.y, tiny_ds.y)


def test_csv_roundtrip_mixed(mixed_ds):
    text = dataset_to_csv(mixed_ds)
    back = parse_csv_text(text, target="label")
    assert back.n_instances == mixed_ds.n_instances
    assert np.array_equal(back.categorical_mask, mixed_ds.categorical_mask)
    # NaN cells survive as missing.
    assert np.isnan(back.X).sum() == np.isnan(mixed_ds.X).sum()
    assert np.array_equal(back.y, mixed_ds.y)


def test_arff_roundtrip_mixed(mixed_ds):
    text = dataset_to_arff(mixed_ds)
    back = parse_arff_text(text)
    assert back.name == mixed_ds.name
    assert back.n_instances == mixed_ds.n_instances
    assert np.array_equal(back.categorical_mask, mixed_ds.categorical_mask)
    assert np.array_equal(back.y, mixed_ds.y)
    # Class names survive in declaration order.
    assert back.class_names == mixed_ds.class_names
    numeric = ~mixed_ds.categorical_mask
    a, b = back.X[:, numeric], mixed_ds.X[:, numeric]
    mask = ~np.isnan(b)
    assert np.allclose(a[mask], b[mask])


def test_arff_declares_all_classes_even_unused():
    from repro.data import Dataset
    ds = Dataset(
        X=np.arange(4, dtype=float).reshape(-1, 1),
        y=np.array([0, 0, 1, 1]),
        class_names=["a", "b", "ghost"],
    )
    text = dataset_to_arff(ds)
    assert "{a,b,ghost}" in text
    back = parse_arff_text(text)
    assert back.class_names == ["a", "b", "ghost"]


def test_file_writers(tmp_path, tiny_ds):
    csv_path = tmp_path / "out.csv"
    arff_path = tmp_path / "out.arff"
    write_csv(tiny_ds, csv_path)
    write_arff(tiny_ds, arff_path)
    assert read_csv(csv_path, target="label").n_instances == tiny_ds.n_instances
    assert read_arff(arff_path).n_instances == tiny_ds.n_instances


def test_missing_cells_written_as_question_mark(mixed_ds):
    text = dataset_to_csv(mixed_ds)
    assert "?" in text


def test_quoted_attribute_names_roundtrip():
    from repro.data import Dataset
    ds = Dataset(
        X=np.arange(4, dtype=float).reshape(-1, 1),
        y=np.array([0, 1, 0, 1]),
        feature_names=["my attr"],
    )
    back = parse_arff_text(dataset_to_arff(ds))
    assert back.feature_names == ["my attr"]
