"""Integration tests for the SmartML orchestrator and its configuration."""

import numpy as np
import pytest

from repro import KnowledgeBase, SmartML, SmartMLConfig
from repro.data import SyntheticSpec, make_dataset
from repro.exceptions import ConfigurationError
from repro.kb import bootstrap_knowledge_base

FAST = dict(
    time_budget_s=None,
    max_evals_per_algorithm=2,
    n_folds=2,
    fallback_portfolio=["knn", "rpart", "lda"],
)


@pytest.fixture
def small_ds():
    return make_dataset(
        SyntheticSpec(name="small", n_instances=90, n_features=5, n_classes=2,
                      class_sep=2.0, seed=21)
    )


# ----------------------------------------------------------------- config
def test_config_validations():
    with pytest.raises(ConfigurationError):
        SmartMLConfig(preprocessing=["bogus"])
    with pytest.raises(ConfigurationError):
        SmartMLConfig(validation_fraction=0.0)
    with pytest.raises(ConfigurationError):
        SmartMLConfig(time_budget_s=None, max_evals_per_algorithm=None)
    with pytest.raises(ConfigurationError):
        SmartMLConfig(time_budget_s=-1.0)
    with pytest.raises(ConfigurationError):
        SmartMLConfig(n_folds=1)
    with pytest.raises(ConfigurationError):
        SmartMLConfig(nomination_mode="psychic")
    with pytest.raises(ConfigurationError):
        SmartMLConfig(fallback_portfolio=[])


def test_config_dict_roundtrip():
    config = SmartMLConfig(preprocessing=["center", "scale"], time_budget_s=3.0)
    clone = SmartMLConfig.from_dict(config.to_dict())
    assert clone.to_dict() == config.to_dict()


def test_config_from_dict_rejects_unknown_keys():
    with pytest.raises(ConfigurationError):
        SmartMLConfig.from_dict({"mystery": 1})


# ------------------------------------------------------------------- runs
def test_cold_run_uses_fallback_portfolio(small_ds):
    result = SmartML().run(small_ds, SmartMLConfig(**FAST))
    assert not result.used_meta_learning
    assert {c.algorithm for c in result.candidates} == {"knn", "rpart", "lda"}
    assert result.best_algorithm in {"knn", "rpart", "lda"}
    assert 0.0 <= result.validation_accuracy <= 1.0


def test_run_returns_fitted_model(small_ds):
    result = SmartML().run(small_ds, SmartMLConfig(**FAST))
    predictions = result.model.predict(np.nan_to_num(small_ds.X))
    assert predictions.shape == (small_ds.n_instances,)


def test_run_updates_kb(small_ds):
    smartml = SmartML()
    assert smartml.kb.n_datasets() == 0
    result = smartml.run(small_ds, SmartMLConfig(**FAST))
    assert smartml.kb.n_datasets() == 1
    assert smartml.kb.n_runs() == len(result.candidates)
    assert result.kb_dataset_id is not None


def test_run_without_kb_update(small_ds):
    smartml = SmartML()
    smartml.run(small_ds, SmartMLConfig(update_kb=False, **FAST))
    assert smartml.kb.n_datasets() == 0


def test_second_run_uses_meta_learning(small_ds):
    smartml = SmartML()
    smartml.run(small_ds, SmartMLConfig(**FAST))
    twin = make_dataset(
        SyntheticSpec(name="twin", n_instances=88, n_features=5, n_classes=2,
                      class_sep=2.0, seed=22)
    )
    result = smartml.run(twin, SmartMLConfig(**FAST))
    assert result.used_meta_learning
    assert result.nominations[0].warm_configs  # KB provided starting points


def test_bootstrapped_kb_nominations_flow(small_ds):
    kb = KnowledgeBase()
    corpus = [
        make_dataset(SyntheticSpec(name=f"c{i}", n_instances=70, n_features=5,
                                   n_classes=2, class_sep=2.0, seed=30 + i))
        for i in range(3)
    ]
    bootstrap_knowledge_base(kb, corpus, algorithms=["knn", "lda", "rpart"],
                             configs_per_algorithm=2, n_folds=2)
    result = SmartML(kb).run(small_ds, SmartMLConfig(**FAST))
    assert result.used_meta_learning
    assert all(c.warm_started for c in result.candidates)


def test_phases_timed(small_ds):
    result = SmartML().run(small_ds, SmartMLConfig(**FAST))
    expected = {
        "validation",
        "preprocessing",
        "metafeatures",
        "algorithm_selection",
        "hyperparameter_tuning",
        "computing_output",
        "kb_update",
    }
    assert set(result.phase_seconds) == expected
    assert all(v >= 0 for v in result.phase_seconds.values())


def test_ensemble_option(small_ds):
    result = SmartML().run(small_ds, SmartMLConfig(ensemble=True, **FAST))
    assert result.ensemble is not None
    assert result.ensemble_validation_accuracy is not None
    proba = result.ensemble.predict_proba(np.nan_to_num(small_ds.X))
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_interpretability_option(small_ds):
    result = SmartML().run(small_ds, SmartMLConfig(interpretability=True, **FAST))
    assert result.importance is not None
    assert len(result.importance.top(3)) == 3


def test_preprocessing_options_respected(small_ds):
    config = SmartMLConfig(preprocessing=["center", "scale", "pca"], **FAST)
    result = SmartML().run(small_ds, config)
    assert result.validation_accuracy > 0.4


def test_feature_selection_option(small_ds):
    config = SmartMLConfig(feature_selection_k=2, **FAST)
    result = SmartML().run(small_ds, config)
    assert result.model.n_features_ == 2


def test_mixed_dataset_with_missing_values(mixed_ds):
    result = SmartML().run(mixed_ds, SmartMLConfig(**FAST))
    assert 0.0 <= result.validation_accuracy <= 1.0


def test_nominations_capped_by_n_algorithms(small_ds):
    smartml = SmartML()
    for seed in (40, 41):
        ds = make_dataset(SyntheticSpec(name=f"p{seed}", n_instances=70,
                                        n_features=5, n_classes=2, seed=seed))
        smartml.run(ds, SmartMLConfig(**FAST))
    result = smartml.run(small_ds, SmartMLConfig(n_algorithms=2, **FAST))
    assert len(result.candidates) <= 2


def test_result_describe_and_to_dict(small_ds):
    result = SmartML().run(
        small_ds, SmartMLConfig(ensemble=True, interpretability=True, **FAST)
    )
    text = result.describe()
    assert "recommended algorithm" in text
    assert result.best_algorithm in text
    payload = result.to_dict()
    assert payload["best_algorithm"] == result.best_algorithm
    # Meta-features are extracted from the *training split* (per the paper),
    # so the instance count is below the full dataset size.
    assert 0 < payload["metafeatures"]["n_instances"] < small_ds.n_instances
    import json
    json.dumps(payload)  # must be JSON-serialisable end to end


def test_deterministic_with_eval_budget(small_ds):
    a = SmartML().run(small_ds, SmartMLConfig(seed=5, **FAST))
    b = SmartML().run(small_ds, SmartMLConfig(seed=5, **FAST))
    assert a.best_algorithm == b.best_algorithm
    assert a.validation_accuracy == b.validation_accuracy
