"""White-box tests for SMAC's proposal and racing internals."""

import numpy as np
import pytest

from repro.hpo import SMAC, Float, ParamSpace, SMACSettings
from repro.hpo.smac import TrialRecord


def _space():
    return ParamSpace([Float("x", 0.0, 1.0, default=0.5)])


class _CountingObjective:
    """Objective whose per-fold costs are fully scripted."""

    def __init__(self, costs_by_x, n_folds=3):
        self.costs_by_x = costs_by_x
        self.n_folds = n_folds
        self.n_fold_evaluations = 0
        self._cache = {}

    def _cost(self, config):
        x = round(float(config["x"]), 3)
        return self.costs_by_x.get(x, 0.9)

    def evaluate_fold(self, config, key, fold_id):
        per = self._cache.setdefault(key, {})
        if fold_id not in per:
            per[fold_id] = self._cost(config)
            self.n_fold_evaluations += 1
        return per[fold_id]

    def evaluate(self, config, key, fold_ids=None):
        fold_ids = fold_ids if fold_ids is not None else range(self.n_folds)
        return float(np.mean([self.evaluate_fold(config, key, f) for f in fold_ids]))

    def known_mean(self, key):
        per = self._cache.get(key)
        return float(np.mean(list(per.values()))) if per else None

    def evaluated_folds(self, key):
        return sorted(self._cache.get(key, {}))


def test_racing_rejects_clear_loser_after_one_fold():
    # default (0.5) is good; everything else is bad -> every challenger
    # must die after exactly one fold.
    objective = _CountingObjective({0.5: 0.1})
    smac = SMAC(_space(), SMACSettings(max_config_evals=6, seed=0))
    result = smac.optimize(objective)
    assert result.incumbent["x"] == pytest.approx(0.5)
    # incumbent: 3 folds; 5 challengers x 1 fold each = 8 total.
    assert objective.n_fold_evaluations == 3 + 5


def test_racing_promotes_strictly_better_challenger():
    objective = _CountingObjective({0.5: 0.4, 0.2: 0.1})
    smac = SMAC(_space(), SMACSettings(max_config_evals=3, seed=0))
    result = smac.optimize(objective, initial_configs=[{"x": 0.2}])
    assert result.incumbent["x"] == pytest.approx(0.2)
    assert result.incumbent_cost == pytest.approx(0.1)
    promoted = [r for r in result.history if r.was_incumbent]
    assert len(promoted) == 2  # default first, then the warm config


def test_duplicate_configs_not_reevaluated():
    objective = _CountingObjective({0.5: 0.2})
    smac = SMAC(_space(), SMACSettings(max_config_evals=4, seed=1))
    result = smac.optimize(
        objective, initial_configs=[{"x": 0.5}, {"x": 0.5}]  # dupes of default
    )
    keys = {tuple(sorted((k, repr(v)) for k, v in r.config.items()))
            for r in result.history}
    assert len(keys) == len(result.history)  # every history entry distinct


def test_proposal_uses_surrogate_after_min_history():
    # With enough history and random_interleave=0, proposals come from EI.
    space = _space()
    history = [
        TrialRecord({"x": x}, cost=(x - 0.7) ** 2, n_folds=3, elapsed_s=0.0)
        for x in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
    ]
    smac = SMAC(space, SMACSettings(max_config_evals=1, random_interleave=0.0, seed=2))
    proposals = [smac._propose(history, {"x": 0.6}) for _ in range(10)]
    mean_x = np.mean([p["x"] for p in proposals])
    # EI should concentrate proposals near the optimum at 0.7.
    assert 0.4 < mean_x < 1.0


def test_proposal_random_before_min_history():
    space = _space()
    smac = SMAC(space, SMACSettings(max_config_evals=1, seed=3))
    history = [TrialRecord({"x": 0.5}, cost=0.5, n_folds=3, elapsed_s=0.0)]
    config = smac._propose(history, {"x": 0.5})
    space.validate(config)  # simply a valid random sample


def test_history_n_folds_reflects_racing_depth():
    objective = _CountingObjective({0.5: 0.1})
    smac = SMAC(_space(), SMACSettings(max_config_evals=4, seed=4))
    result = smac.optimize(objective)
    assert result.history[0].n_folds == objective.n_folds
    for record in result.history[1:]:
        assert record.n_folds == 1  # losers rejected on the first fold
