"""Property-based tests: classifier contracts under arbitrary valid inputs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classifiers import make_classifier
from repro.data import SyntheticSpec, make_dataset

#: Fast classifiers suitable for many hypothesis examples.
FAST_NAMES = ["knn", "naive_bayes", "lda", "rda", "rpart", "j48", "plsda"]


@st.composite
def small_problem(draw):
    n = draw(st.integers(min_value=12, max_value=60))
    d = draw(st.integers(min_value=1, max_value=6))
    k = draw(st.integers(min_value=2, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = max(n, 3 * k)
    ds = make_dataset(
        SyntheticSpec(name="prop", n_instances=n, n_features=d, n_classes=k,
                      class_sep=1.5, seed=seed)
    )
    return ds


@settings(max_examples=20, deadline=None)
@given(ds=small_problem(), which=st.sampled_from(FAST_NAMES))
def test_property_fit_predict_contract(ds, which):
    clf = make_classifier(which)
    clf.fit(ds.X, ds.y, n_classes=ds.n_classes)
    proba = clf.predict_proba(ds.X)
    assert proba.shape == (ds.n_instances, ds.n_classes)
    assert np.isfinite(proba).all()
    assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)
    predictions = clf.predict(ds.X)
    assert predictions.min() >= 0
    assert predictions.max() < ds.n_classes


@settings(max_examples=15, deadline=None)
@given(ds=small_problem())
def test_property_prediction_invariant_to_row_order(ds):
    clf = make_classifier("lda")
    clf.fit(ds.X, ds.y, n_classes=ds.n_classes)
    order = np.random.default_rng(0).permutation(ds.n_instances)
    direct = clf.predict_proba(ds.X)[order]
    shuffled = clf.predict_proba(ds.X[order])
    assert np.allclose(direct, shuffled, atol=1e-10)


@settings(max_examples=15, deadline=None)
@given(ds=small_problem(), scale=st.floats(min_value=0.1, max_value=10.0))
def test_property_knn_scale_invariance(ds, scale):
    # KNN standardises internally, so uniform feature scaling is a no-op.
    a = make_classifier("knn", k=3)
    a.fit(ds.X, ds.y, n_classes=ds.n_classes)
    b = make_classifier("knn", k=3)
    b.fit(ds.X * scale, ds.y, n_classes=ds.n_classes)
    assert np.array_equal(a.predict(ds.X), b.predict(ds.X * scale))


@settings(max_examples=15, deadline=None)
@given(ds=small_problem(), shift=st.floats(min_value=-100, max_value=100))
def test_property_tree_shift_invariance(ds, shift):
    # Axis-aligned splits are invariant to per-column monotone shifts.
    a = make_classifier("rpart")
    a.fit(ds.X, ds.y, n_classes=ds.n_classes)
    b = make_classifier("rpart")
    b.fit(ds.X + shift, ds.y, n_classes=ds.n_classes)
    assert np.array_equal(a.predict(ds.X), b.predict(ds.X + shift))


@settings(max_examples=10, deadline=None)
@given(ds=small_problem())
def test_property_label_permutation_consistency(ds):
    # Swapping class labels 0<->1 must swap the probability columns.
    if ds.n_classes != 2:
        return
    a = make_classifier("naive_bayes")
    a.fit(ds.X, ds.y, n_classes=2)
    b = make_classifier("naive_bayes")
    b.fit(ds.X, 1 - ds.y, n_classes=2)
    assert np.allclose(
        a.predict_proba(ds.X), b.predict_proba(ds.X)[:, ::-1], atol=1e-8
    )
