"""Unit + property tests for the shared decision-tree engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classifiers.tree import (
    TreeParams,
    build_tree,
    children_impurity,
    cost_complexity_prune,
    count_leaves,
    entropy,
    gain_ratio,
    gini,
    iter_nodes,
    pessimistic_prune,
    subtree_error,
    tree_apply,
    tree_depth,
    tree_predict_proba,
)


# ----------------------------------------------------------------- criteria
def test_gini_pure_is_zero():
    assert gini(np.array([[10.0, 0.0]]))[0] == pytest.approx(0.0)


def test_gini_uniform_is_max():
    assert gini(np.array([[5.0, 5.0]]))[0] == pytest.approx(0.5)
    assert gini(np.array([[2.0, 2.0, 2.0, 2.0]]))[0] == pytest.approx(0.75)


def test_entropy_pure_and_uniform():
    assert entropy(np.array([[8.0, 0.0]]))[0] == pytest.approx(0.0)
    assert entropy(np.array([[4.0, 4.0]]))[0] == pytest.approx(1.0)


def test_empty_counts_zero_impurity():
    assert gini(np.array([[0.0, 0.0]]))[0] == pytest.approx(0.0)
    assert entropy(np.array([[0.0, 0.0]]))[0] == pytest.approx(0.0)


def test_children_impurity_prefers_clean_split():
    clean_left = np.array([[10.0, 0.0]])
    clean_right = np.array([[0.0, 10.0]])
    messy_left = np.array([[5.0, 5.0]])
    messy_right = np.array([[5.0, 5.0]])
    for criterion in ("gini", "entropy", "gain_ratio"):
        good = children_impurity(clean_left, clean_right, criterion)[0]
        bad = children_impurity(messy_left, messy_right, criterion)[0]
        assert good < bad


def test_gain_ratio_penalises_unbalanced_splits():
    # Same information gain structure, different split balance.
    balanced = gain_ratio(np.array([[5.0, 0.0]]), np.array([[0.0, 5.0]]))[0]
    lopsided = gain_ratio(np.array([[1.0, 0.0]]), np.array([[4.0, 5.0]]))[0]
    assert balanced > lopsided


# ------------------------------------------------------------------ builder
def _xor_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(np.int64)
    return X, y


def test_tree_learns_xor():
    X, y = _xor_data()
    root = build_tree(X, y, 2, TreeParams(max_depth=4))
    proba = tree_predict_proba(root, X, 2)
    assert (np.argmax(proba, axis=1) == y).mean() > 0.95


def test_max_depth_respected():
    X, y = _xor_data()
    root = build_tree(X, y, 2, TreeParams(max_depth=2))
    assert tree_depth(root) <= 2


def test_min_bucket_respected():
    X, y = _xor_data()
    root = build_tree(X, y, 2, TreeParams(min_bucket=20))
    for node in iter_nodes(root):
        if node.is_leaf:
            assert node.n >= 20


def test_pure_node_not_split():
    X = np.arange(10, dtype=float).reshape(-1, 1)
    y = np.zeros(10, dtype=np.int64)
    root = build_tree(X, y, 2, TreeParams())
    assert root.is_leaf


def test_constant_features_yield_leaf():
    X = np.ones((20, 3))
    y = np.tile([0, 1], 10).astype(np.int64)
    root = build_tree(X, y, 2, TreeParams())
    assert root.is_leaf


def test_weights_shift_majority():
    X = np.zeros((10, 1))
    y = np.array([0] * 6 + [1] * 4, dtype=np.int64)
    weights = np.array([1.0] * 6 + [10.0] * 4)
    root = build_tree(X, y, 2, TreeParams(), weights=weights)
    assert root.prediction == 1


def test_feature_subsampling_uses_rng():
    X, y = _xor_data(seed=3)
    rng = np.random.default_rng(0)
    root = build_tree(X, y, 2, TreeParams(max_features=1), rng=rng)
    assert count_leaves(root) >= 1  # just must not crash and stay valid


def test_apply_routes_all_rows():
    X, y = _xor_data()
    root = build_tree(X, y, 2, TreeParams(max_depth=3))
    leaves = tree_apply(root, X)
    assert len(leaves) == X.shape[0]
    assert all(leaf.is_leaf for leaf in leaves)


def test_proba_rows_normalised():
    X, y = _xor_data()
    root = build_tree(X, y, 2, TreeParams(max_depth=3))
    proba = tree_predict_proba(root, X, 2)
    assert np.allclose(proba.sum(axis=1), 1.0)


# ------------------------------------------------------------------ pruning
def test_cost_complexity_prunes_noise_splits():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(150, 3))
    y = rng.integers(0, 2, size=150)  # pure noise
    full = build_tree(X, y, 2, TreeParams(max_depth=10))
    pruned = build_tree(X, y, 2, TreeParams(max_depth=10))
    cost_complexity_prune(pruned, cp=0.05)
    assert count_leaves(pruned) < count_leaves(full)


def test_cost_complexity_cp_zero_noop():
    X, y = _xor_data()
    root = build_tree(X, y, 2, TreeParams(max_depth=4))
    before = count_leaves(root)
    cost_complexity_prune(root, cp=0.0)
    assert count_leaves(root) == before


def test_cost_complexity_keeps_real_structure():
    X, y = _xor_data(n=400)
    root = build_tree(X, y, 2, TreeParams(max_depth=6))
    cost_complexity_prune(root, cp=0.01)
    proba = tree_predict_proba(root, X, 2)
    assert (np.argmax(proba, axis=1) == y).mean() > 0.9


def test_pessimistic_prunes_noise():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(150, 3))
    y = rng.integers(0, 2, size=150)
    # gini keeps splitting noise all the way to purity, so the grown tree
    # badly overfits and error-based pruning must collapse parts of it.
    full = build_tree(X, y, 2, TreeParams(max_depth=12, criterion="gini"))
    before = count_leaves(full)
    pessimistic_prune(full, confidence=0.25)
    assert count_leaves(full) < before


def test_pessimistic_lower_confidence_prunes_more():
    rng = np.random.default_rng(5)
    X = rng.normal(size=(200, 4))
    y = (X[:, 0] > 0).astype(np.int64)
    flip = rng.random(200) < 0.25
    y[flip] = 1 - y[flip]

    gentle = build_tree(X, y, 2, TreeParams(max_depth=12, criterion="gain_ratio"))
    harsh = build_tree(X, y, 2, TreeParams(max_depth=12, criterion="gain_ratio"))
    pessimistic_prune(gentle, confidence=0.45)
    pessimistic_prune(harsh, confidence=0.01)
    assert count_leaves(harsh) <= count_leaves(gentle)


def test_subtree_error_zero_on_separable():
    X, y = _xor_data()
    root = build_tree(X, y, 2, TreeParams(max_depth=8))
    assert subtree_error(root) <= 2  # essentially separable


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5000),
    depth=st.integers(min_value=1, max_value=6),
)
def test_property_tree_predictions_valid(seed, depth):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(60, 3))
    y = rng.integers(0, 3, size=60)
    root = build_tree(X, y, 3, TreeParams(max_depth=depth))
    proba = tree_predict_proba(root, X, 3)
    assert proba.shape == (60, 3)
    assert np.allclose(proba.sum(axis=1), 1.0)
    assert tree_depth(root) <= depth
