"""Unit tests for weighted ensembling and interpretability."""

import numpy as np
import pytest

from repro.classifiers import KNN, LDA, RPart
from repro.ensemble import WeightedEnsemble, build_weighted_ensemble
from repro.exceptions import ConfigurationError
from repro.interpret import partial_dependence, permutation_importance


def _fitted_members(ds):
    members = []
    for cls in (KNN, LDA, RPart):
        clf = cls()
        clf.fit(ds.X, ds.y, n_classes=ds.n_classes)
        members.append(clf)
    return members


def test_ensemble_proba_normalised(multi_ds):
    members = _fitted_members(multi_ds)
    ensemble = WeightedEnsemble(members, [0.5, 0.3, 0.2])
    proba = ensemble.predict_proba(multi_ds.X)
    assert proba.shape == (multi_ds.n_instances, multi_ds.n_classes)
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_ensemble_single_member_equals_member(multi_ds):
    member = _fitted_members(multi_ds)[0]
    ensemble = WeightedEnsemble([member], [1.0])
    assert np.allclose(
        ensemble.predict_proba(multi_ds.X), member.predict_proba(multi_ds.X)
    )


def test_ensemble_weights_normalised(multi_ds):
    members = _fitted_members(multi_ds)
    ensemble = WeightedEnsemble(members, [2.0, 2.0, 4.0])
    assert ensemble.weights == pytest.approx([0.25, 0.25, 0.5])


def test_ensemble_zero_weight_member_ignored(multi_ds):
    members = _fitted_members(multi_ds)
    with_zero = WeightedEnsemble(members[:2], [1.0, 0.0])
    alone = WeightedEnsemble([members[0]], [1.0])
    assert np.allclose(
        with_zero.predict_proba(multi_ds.X), alone.predict_proba(multi_ds.X)
    )


def test_ensemble_validations(multi_ds):
    members = _fitted_members(multi_ds)
    with pytest.raises(ConfigurationError):
        WeightedEnsemble([])
    with pytest.raises(ConfigurationError):
        WeightedEnsemble(members, [1.0])
    with pytest.raises(ConfigurationError):
        WeightedEnsemble(members, [-1.0, 1.0, 1.0])
    with pytest.raises(ConfigurationError):
        WeightedEnsemble(members, [0.0, 0.0, 0.0])


def test_build_weighted_ensemble_ranks_by_accuracy(multi_ds):
    members = _fitted_members(multi_ds)
    scored = list(zip(members, [0.5, 0.9, 0.7]))
    ensemble = build_weighted_ensemble(scored, top_k=2)
    assert len(ensemble.members) == 2
    assert ensemble.members[0] is members[1]  # highest accuracy first
    assert ensemble.weights[0] > ensemble.weights[1]


def test_build_weighted_ensemble_empty_raises():
    with pytest.raises(ConfigurationError):
        build_weighted_ensemble([])


def test_ensemble_can_beat_or_match_weak_member(multi_ds):
    from repro.evaluation import accuracy
    members = _fitted_members(multi_ds)
    scored = [(m, accuracy(multi_ds.y, m.predict(multi_ds.X))) for m in members]
    worst = min(score for _, score in scored)
    ensemble = build_weighted_ensemble(scored, top_k=3)
    ensemble_acc = accuracy(multi_ds.y, ensemble.predict(multi_ds.X))
    assert ensemble_acc >= worst - 0.05


# ------------------------------------------------------------ interpretability
def test_permutation_importance_finds_informative_feature():
    rng = np.random.default_rng(0)
    n = 300
    signal = rng.normal(size=n)
    X = np.column_stack([signal, rng.normal(size=n), rng.normal(size=n)])
    y = (signal > 0).astype(np.int64)
    clf = RPart(cp=0.01).fit(X, y)
    report = permutation_importance(clf, X, y, feature_names=["sig", "n1", "n2"], seed=1)
    assert report.top(1)[0][0] == "sig"
    assert report.importances_mean[0] > max(report.importances_mean[1:]) + 0.1


def test_permutation_importance_describe(tiny_ds):
    clf = KNN(k=3).fit(tiny_ds.X, tiny_ds.y)
    report = permutation_importance(clf, tiny_ds.X, tiny_ds.y, seed=0)
    text = report.describe()
    assert "baseline accuracy" in text


def test_permutation_importance_baseline_matches_accuracy(tiny_ds):
    from repro.evaluation import accuracy
    clf = LDA().fit(tiny_ds.X, tiny_ds.y)
    report = permutation_importance(clf, tiny_ds.X, tiny_ds.y, seed=0)
    assert report.baseline_score == pytest.approx(
        accuracy(tiny_ds.y, clf.predict(tiny_ds.X))
    )


def test_partial_dependence_monotone_signal():
    rng = np.random.default_rng(1)
    n = 300
    x0 = rng.uniform(-2, 2, size=n)
    X = np.column_stack([x0, rng.normal(size=n)])
    y = (x0 > 0).astype(np.int64)
    clf = LDA().fit(X, y)
    pdp = partial_dependence(clf, X, feature=0, grid_size=8, seed=0)
    _, curve = pdp.curve_for_class(1)
    assert curve[-1] > curve[0] + 0.3  # probability of class 1 rises with x0


def test_partial_dependence_flat_for_noise_feature():
    rng = np.random.default_rng(2)
    n = 300
    x0 = rng.uniform(-2, 2, size=n)
    X = np.column_stack([x0, rng.normal(size=n)])
    y = (x0 > 0).astype(np.int64)
    clf = LDA().fit(X, y)
    pdp = partial_dependence(clf, X, feature=1, grid_size=8, seed=0)
    _, curve = pdp.curve_for_class(1)
    assert np.ptp(curve) < 0.15


def test_partial_dependence_describe(tiny_ds):
    clf = LDA().fit(tiny_ds.X, tiny_ds.y)
    pdp = partial_dependence(clf, tiny_ds.X, feature=0, seed=0)
    assert "feature 0" in pdp.describe()
