"""Unit + property tests for the 25 meta-features."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Dataset, SyntheticSpec, make_dataset
from repro.metafeatures import META_FEATURE_NAMES, MetaFeatures, extract_metafeatures


def test_exactly_25_metafeatures():
    assert len(META_FEATURE_NAMES) == 25


def test_paper_named_examples_present():
    # "number of instances, number of classes, skewness and kurtosis of
    #  numerical features, and symbols of categorical features"
    assert "n_instances" in META_FEATURE_NAMES
    assert "n_classes" in META_FEATURE_NAMES
    assert any(name.startswith("skewness") for name in META_FEATURE_NAMES)
    assert any(name.startswith("kurtosis") for name in META_FEATURE_NAMES)
    assert any("symbols" in name for name in META_FEATURE_NAMES)


def test_simple_counts(mixed_ds):
    mf = extract_metafeatures(mixed_ds)
    assert mf.n_instances == mixed_ds.n_instances
    assert mf.n_features == mixed_ds.n_features
    assert mf.n_classes == mixed_ds.n_classes
    assert mf.n_categorical == len(mixed_ds.categorical_indices)
    assert mf.n_numeric + mf.n_categorical == mf.n_features


def test_class_statistics_balanced():
    rng = np.random.default_rng(0)
    ds = Dataset(X=rng.normal(size=(40, 3)), y=np.tile([0, 1], 20))
    mf = extract_metafeatures(ds)
    assert mf.class_entropy == pytest.approx(1.0)
    assert mf.imbalance_ratio == pytest.approx(1.0)
    assert mf.class_prob_min == pytest.approx(0.5)


def test_class_entropy_drops_with_imbalance():
    rng = np.random.default_rng(1)
    balanced = Dataset(X=rng.normal(size=(40, 2)), y=np.tile([0, 1], 20))
    skewed = Dataset(X=rng.normal(size=(40, 2)), y=np.array([0] * 36 + [1] * 4))
    assert (
        extract_metafeatures(skewed).class_entropy
        < extract_metafeatures(balanced).class_entropy
    )


def test_missing_ratio_reported(mixed_ds):
    mf = extract_metafeatures(mixed_ds)
    assert mf.missing_ratio == pytest.approx(mixed_ds.missing_ratio())


def test_skewness_detects_asymmetry():
    rng = np.random.default_rng(2)
    sym = Dataset(X=rng.normal(size=(300, 1)), y=rng.integers(0, 2, 300))
    skew = Dataset(X=rng.lognormal(size=(300, 1)), y=rng.integers(0, 2, 300))
    assert abs(extract_metafeatures(skew).skewness_mean) > abs(
        extract_metafeatures(sym).skewness_mean
    )


def test_symbols_mean(mixed_ds):
    mf = extract_metafeatures(mixed_ds)
    cards = mixed_ds.category_cardinalities()
    assert mf.symbols_mean == pytest.approx(cards.mean())


def test_no_numeric_columns_gives_zero_moments():
    rng = np.random.default_rng(3)
    ds = Dataset(
        X=rng.integers(0, 3, size=(30, 2)).astype(float),
        y=rng.integers(0, 2, 30),
        categorical_mask=np.array([True, True]),
    )
    mf = extract_metafeatures(ds)
    assert mf.skewness_mean == 0.0
    assert mf.kurtosis_mean == 0.0


def test_vector_roundtrip(mixed_ds):
    mf = extract_metafeatures(mixed_ds)
    vec = mf.to_vector()
    assert vec.shape == (25,)
    assert MetaFeatures.from_vector(vec) == mf


def test_dict_roundtrip(mixed_ds):
    mf = extract_metafeatures(mixed_ds)
    assert MetaFeatures.from_dict(mf.to_dict()) == mf


def test_from_dict_ignores_unknown_defaults_missing():
    mf = MetaFeatures.from_dict({"n_instances": 5.0, "bogus": 1.0})
    assert mf.n_instances == 5.0
    assert mf.n_features == 0.0


def test_from_vector_wrong_shape_raises():
    with pytest.raises(ValueError):
        MetaFeatures.from_vector(np.zeros(7))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=12, max_value=120),
    d=st.integers(min_value=1, max_value=10),
    k=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=5000),
)
def test_property_metafeatures_always_finite(n, d, k, seed):
    n = max(n, 2 * k)
    ds = make_dataset(
        SyntheticSpec(name="p", n_instances=n, n_features=d, n_classes=k,
                      n_categorical=min(1, d - 1) if d > 1 else 0,
                      missing_ratio=0.05, seed=seed)
    )
    vec = extract_metafeatures(ds).to_vector()
    assert np.isfinite(vec).all()
    mf = extract_metafeatures(ds)
    assert 0.0 <= mf.class_entropy <= 1.0 + 1e-9
    assert 0.0 <= mf.imbalance_ratio <= 1.0
