"""Table-3 parity tests for the per-classifier spaces and the joint space."""

import numpy as np
import pytest

from repro.classifiers import classifier_names, make_classifier
from repro.exceptions import ConfigurationError
from repro.hpo import (
    TABLE3_EXPECTED_COUNTS,
    classifier_space,
    joint_space,
    merge_into_joint_config,
    split_joint_config,
)


def test_every_classifier_has_a_space():
    for name in classifier_names():
        assert classifier_space(name) is not None


def test_unknown_classifier_space_raises():
    with pytest.raises(ConfigurationError):
        classifier_space("mystery")


@pytest.mark.parametrize("name", classifier_names())
def test_table3_parameter_counts_match_paper(name):
    space = classifier_space(name)
    expected_cat, expected_num = TABLE3_EXPECTED_COUNTS[name]
    assert space.n_categorical() == expected_cat, name
    assert space.n_numerical() == expected_num, name


@pytest.mark.parametrize("name", classifier_names())
def test_default_config_constructs_classifier(name):
    config = classifier_space(name).default_config()
    clf = make_classifier(name, **config)
    assert clf is not None


@pytest.mark.parametrize("name", classifier_names())
def test_sampled_configs_construct_classifiers(name, rng):
    space = classifier_space(name)
    for _ in range(5):
        config = space.sample(rng)
        make_classifier(name, **config)


def test_joint_space_has_root_algorithm():
    space = joint_space(["knn", "lda"])
    assert space.params[0].name == "algorithm"
    assert space.params[0].choices == ("knn", "lda")


def test_joint_space_total_size():
    space = joint_space()
    # 1 root + sum of all per-classifier params
    expected = 1 + sum(
        cat + num for cat, num in TABLE3_EXPECTED_COUNTS.values()
    )
    assert len(space) == expected


def test_joint_sample_only_activates_one_branch(rng):
    space = joint_space(["knn", "svm", "rpart"])
    for _ in range(20):
        config = space.sample(rng)
        algo, flat = split_joint_config(config)
        assert algo in ("knn", "svm", "rpart")
        assert len(config) == 1 + len(flat)
        make_classifier(algo, **flat)


def test_split_merge_roundtrip(rng):
    space = joint_space(["j48", "rda"])
    config = space.sample(rng)
    algo, flat = split_joint_config(config)
    merged = merge_into_joint_config(algo, flat)
    assert merged == config


def test_split_requires_algorithm_key():
    with pytest.raises(ConfigurationError):
        split_joint_config({"knn:k": 3})


def test_joint_defaults_validate():
    space = joint_space()
    config = space.default_config()
    space.validate(config)
    algo, flat = split_joint_config(config)
    make_classifier(algo, **flat)
