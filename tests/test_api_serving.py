"""REST model-serving lifecycle: register -> list -> predict -> delete -> 404.

Plus the property that actually makes a registry worth having: a model
registered before a server dies is served — bit-identically — by the next
server started over the same registry directory.
"""

import threading

import numpy as np
import pytest

from repro.api import SmartMLClient, SmartMLServer
from repro.classifiers import CLASSIFIER_REGISTRY
from repro.core import SmartML
from repro.core.result import SmartMLResult
from repro.data import SyntheticSpec, make_dataset
from repro.data.writers import dataset_to_arff
from repro.exceptions import SmartMLError
from repro.preprocess import Imputer, Pipeline
from repro.serving import ModelRegistry

FAST_CONFIG = {
    "time_budget_s": None,
    "max_evals_per_algorithm": 1,
    "n_folds": 2,
    "n_algorithms": 1,
    "fallback_portfolio": ["knn"],
    "update_kb": False,
    "backend": "serial",
}


@pytest.fixture(scope="module")
def corpus():
    train = make_dataset(
        SyntheticSpec(name="rest-train", n_instances=80, n_features=5,
                      n_classes=2, class_sep=2.2, seed=53)
    )
    fresh = make_dataset(
        SyntheticSpec(name="rest-fresh", n_instances=30, n_features=5,
                      n_classes=2, class_sep=2.2, seed=59)
    )
    return train, fresh


def _fitted_result(train, family="knn", **params):
    pipeline = Pipeline([Imputer()])
    prepared = pipeline.fit_transform(train)
    model = CLASSIFIER_REGISTRY[family](**params)
    model.fit(prepared.X, prepared.y, n_classes=train.n_classes)
    return SmartMLResult(
        dataset_name=train.name, best_algorithm=family, best_config=dict(params),
        validation_accuracy=0.0, model=model, pipeline=pipeline,
    )


@pytest.fixture
def server(tmp_path):
    srv = SmartMLServer(workers=1, registry_dir=tmp_path / "models")
    srv.serve_background()
    yield srv
    srv.shutdown()


def test_full_model_lifecycle_over_rest(server, corpus):
    train, fresh = corpus
    client = SmartMLClient(port=server.port)

    # Empty registry to start.
    assert client.list_models()["models"] == []

    # Register through the experiment pipeline (the production path).
    upload = client.upload_arff(dataset_to_arff(train), name=train.name)
    job = client.submit_experiment(
        upload["dataset_id"], FAST_CONFIG, register_as="lifecycle-model"
    )
    assert job["register_as"] == "lifecycle-model"
    result = client.wait_experiment(job["job_id"], timeout=120)
    assert result["registration"]["model_id"] == "lifecycle-model"
    assert result["registration"]["version"] == 1

    # List + inspect.
    models = client.list_models()["models"]
    assert [m["model_id"] for m in models] == ["lifecycle-model"]
    info = client.get_model("lifecycle-model")
    assert info["versions"] == [1]
    assert info["n_features"] == train.n_features

    # Predict: response carries codes and human-readable labels.
    response = client.predict("lifecycle-model", fresh.X[:7].tolist())
    assert response["version"] == 1
    assert len(response["predictions"]) == 7
    assert response["labels"] == [train.class_names[c] for c in response["predictions"]]
    proba = client.predict("lifecycle-model", fresh.X[:4].tolist(), proba=True)
    assert np.allclose(np.sum(proba["probabilities"], axis=1), 1.0)
    assert proba["class_names"] == list(train.class_names)

    # Delete -> 404 on every model route.
    assert client.delete_model("lifecycle-model")["deleted_versions"] == [1]
    for call in (
        lambda: client.get_model("lifecycle-model"),
        lambda: client.predict("lifecycle-model", fresh.X[:1].tolist()),
        lambda: client.delete_model("lifecycle-model"),
    ):
        with pytest.raises(SmartMLError, match="404"):
            call()


def test_models_survive_server_restart(tmp_path, corpus):
    train, fresh = corpus
    registry_dir = tmp_path / "models"

    first = SmartMLServer(workers=1, registry_dir=registry_dir)
    first.serve_background()
    try:
        result = _fitted_result(train, "random_forest", ntree=5)
        expected = result.predict_proba(fresh)
        first.jobs.registry_apply(
            lambda: first.registry.register("durable", result, dataset=train)
        )
        client = SmartMLClient(port=first.port)
        before = client.predict("durable", fresh.X.tolist(), proba=True)
    finally:
        first.shutdown()

    # A brand-new process-equivalent: new server, new registry object, same
    # directory.  The model must still be there and predict the same bits.
    second = SmartMLServer(workers=1, registry_dir=registry_dir)
    second.serve_background()
    try:
        client = SmartMLClient(port=second.port)
        assert [m["model_id"] for m in client.list_models()["models"]] == ["durable"]
        after = client.predict("durable", fresh.X.tolist(), proba=True)
        assert after["probabilities"] == before["probabilities"]
        assert np.array_equal(np.asarray(after["probabilities"]), expected)
    finally:
        second.shutdown()


def test_register_as_validated_at_submit_time(server, corpus):
    train, _ = corpus
    client = SmartMLClient(port=server.port)
    upload = client.upload_arff(dataset_to_arff(train), name=train.name)
    with pytest.raises(SmartMLError, match="invalid model id"):
        client.submit_experiment(upload["dataset_id"], FAST_CONFIG,
                                 register_as="../escape")
    # Nothing was enqueued for the bad id.
    assert all(
        job["register_as"] is None for job in client.list_experiments()["jobs"]
    )


def test_predict_validation_errors_are_4xx(server, corpus):
    train, fresh = corpus
    client = SmartMLClient(port=server.port)
    with pytest.raises(SmartMLError, match="404"):
        client.predict("never-registered", fresh.X[:1].tolist())
    server.jobs.registry_apply(
        lambda: server.registry.register("m", _fitted_result(train), dataset=train)
    )
    with pytest.raises(SmartMLError, match="400"):
        client.predict("m", [])  # empty rows
    with pytest.raises(SmartMLError, match="400"):
        client.predict("m", fresh.X[:2, :3].tolist())  # wrong width


def test_concurrent_rest_predicts_coalesce_and_stay_correct(server, corpus):
    train, fresh = corpus
    client = SmartMLClient(port=server.port)
    result = _fitted_result(train, "lda")
    expected = result.predict_proba(fresh)
    server.jobs.registry_apply(
        lambda: server.registry.register("lda-m", result, dataset=train)
    )

    slices = [(i, i + 3) for i in range(0, 30, 3)]
    outcomes: list = [None] * len(slices)
    barrier = threading.Barrier(len(slices))

    def call(i, lo, hi):
        barrier.wait()
        outcomes[i] = SmartMLClient(port=server.port).predict(
            "lda-m", fresh.X[lo:hi].tolist(), proba=True
        )

    threads = [
        threading.Thread(target=call, args=(i, lo, hi))
        for i, (lo, hi) in enumerate(slices)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for (lo, hi), response in zip(slices, outcomes):
        assert np.array_equal(np.asarray(response["probabilities"]), expected[lo:hi])
    stats = client.serving_stats()
    assert stats["batcher"]["requests"] >= len(slices)


def test_cli_level_registry_registration(tmp_path, corpus):
    # SmartML.run(register_as=...) without any server: the library path.
    train, fresh = corpus
    registry = ModelRegistry(tmp_path / "reg")
    from repro.core import SmartMLConfig

    result = SmartML(model_registry=registry).run(
        train, SmartMLConfig.from_dict(dict(FAST_CONFIG)), register_as="lib-model"
    )
    assert result.registration["version"] == 1
    reloaded = ModelRegistry(tmp_path / "reg").load("lib-model")
    assert np.array_equal(
        reloaded.predict_rows(fresh.X), result.predict(fresh)
    )


def test_register_as_without_registry_raises(corpus):
    train, _ = corpus
    from repro.core import SmartMLConfig

    with pytest.raises(SmartMLError, match="requires a model registry"):
        SmartML().run(train, SmartMLConfig.from_dict(dict(FAST_CONFIG)),
                      register_as="m")
