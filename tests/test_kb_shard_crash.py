"""Crash-consistency property for sharded KB appends.

Kill the writer at every frame boundary (before / torn / after), then
fsck + restart: the surviving shard logs must be byte-identical to an
uninterrupted run that performed exactly the batches that landed.
"""

import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import SyntheticSpec, make_dataset
from repro.kb import KnowledgeBase
from repro.kb.shards import ShardedRecordStore, fsck_store
from repro.metafeatures import extract_metafeatures
from repro.testing.faults import JournalCrashPlan, count_shard_frames

N_SHARDS = 3
MAX_BATCHES = 6

_MF = [
    extract_metafeatures(
        make_dataset(
            SyntheticSpec(name=f"d{i}", n_instances=50, n_features=4, n_classes=2, seed=i)
        )
    )
    for i in range(MAX_BATCHES)
]


def _open_kb(root) -> KnowledgeBase:
    return KnowledgeBase(
        store=ShardedRecordStore(root, n_shards=N_SHARDS, snapshot_every=None)
    )


def _apply_batches(kb: KnowledgeBase, n: int) -> int:
    """Land up to ``n`` experiment batches; returns how many actually landed.

    Each batch is one dataset + two runs — exactly one frame in one shard,
    so frame index == batch index.  A sealed (crashed) store stops the loop.
    """
    landed = 0
    for i in range(n):
        runs = [
            {"algorithm": "knn", "config": {"k": 3}, "accuracy": 0.7 + i / 100,
             "n_folds": 3, "budget_s": 1.0},
            {"algorithm": "lda", "config": {}, "accuracy": 0.5, "n_folds": 3,
             "budget_s": 1.0},
        ]
        try:
            kb.add_result_batch(f"d{i}", _MF[i], runs)
        except Exception:
            break
        if kb.store.dead:
            # The batch's frame was the crash point: whether it counts as
            # landed depends on the injected bytes, which the byte-level
            # comparison settles; stop driving either way.
            break
        landed += 1
    return landed


def _shard_logs(root) -> dict[str, bytes]:
    return {p.name: p.read_bytes() for p in sorted(Path(root).glob("shard-*.log"))}


def _reference_logs(n_batches: int) -> dict[str, bytes]:
    tmp = Path(tempfile.mkdtemp(prefix="kb-ref-"))
    try:
        kb = _open_kb(tmp / "root")
        _apply_batches(kb, n_batches)
        kb.close()
        return _shard_logs(tmp / "root")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _crash_recover_check(n_batches: int, at_frame: int, mode: str, cut_bytes: int = 3):
    tmp = Path(tempfile.mkdtemp(prefix="kb-crash-"))
    try:
        root = tmp / "root"
        kb = _open_kb(root)
        plan = JournalCrashPlan(at_frame, mode=mode, cut_bytes=cut_bytes)
        kb.store.fault_hook = plan
        _apply_batches(kb, n_batches)
        assert plan.fired and kb.store.dead
        # No close(): the "process" died.  fsck sees at worst a torn tail.
        report = fsck_store(root)
        assert all(s["status"] in ("ok", "torn") for s in report["shards"]), report

        recovered = KnowledgeBase(root)  # auto-repairs the torn tail
        assert not recovered.degraded
        landed = at_frame + (1 if mode == "after" else 0)
        assert recovered.n_datasets() == landed
        recovered.close()

        assert _shard_logs(root) == _reference_logs(landed)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


@pytest.mark.parametrize("mode", ["before", "torn", "after"])
@pytest.mark.parametrize("at_frame", range(4))
def test_every_crash_point_recovers(at_frame, mode):
    _crash_recover_check(4, at_frame, mode)


@settings(max_examples=25, deadline=None)
@given(
    n_batches=st.integers(min_value=1, max_value=MAX_BATCHES),
    at_frame=st.integers(min_value=0, max_value=MAX_BATCHES - 1),
    mode=st.sampled_from(["before", "torn", "after"]),
    cut_bytes=st.integers(min_value=1, max_value=64),
)
def test_crash_consistency_property(n_batches, at_frame, mode, cut_bytes):
    at_frame = at_frame % n_batches
    _crash_recover_check(n_batches, at_frame, mode, cut_bytes=cut_bytes)


def test_count_shard_frames_enumerates_crash_points(tmp_path):
    kb = _open_kb(tmp_path / "root")
    _apply_batches(kb, 5)
    kb.close()
    assert count_shard_frames(tmp_path / "root") == 5  # one frame per batch
