"""Tests for the Auto-Weka (cold-start CASH) baseline."""

import pytest

from repro.baselines import AutoWekaBaseline, RandomSearchCASH
from repro.data import SyntheticSpec, make_dataset

ALGOS = ["knn", "rpart", "lda"]


@pytest.fixture
def small_ds():
    return make_dataset(
        SyntheticSpec(name="b", n_instances=90, n_features=5, n_classes=2,
                      class_sep=2.0, seed=33)
    )


def test_autoweka_runs_and_reports(small_ds):
    baseline = AutoWekaBaseline(
        algorithms=ALGOS, time_budget_s=None, max_config_evals=6, n_folds=2, seed=0
    )
    result = baseline.run(small_ds)
    assert result.best_algorithm in ALGOS
    assert 0.0 <= result.validation_accuracy <= 1.0
    assert result.n_config_evals == 6
    assert result.dataset_name == "b"


def test_autoweka_cold_start_no_kb_involved(small_ds):
    # The baseline owns no knowledge base at all — by construction.
    baseline = AutoWekaBaseline(algorithms=ALGOS, time_budget_s=None,
                                max_config_evals=4, n_folds=2)
    assert not hasattr(baseline, "kb")
    result = baseline.run(small_ds)
    assert result.best_config is not None


def test_autoweka_deterministic_with_eval_cap(small_ds):
    kwargs = dict(algorithms=ALGOS, time_budget_s=None, max_config_evals=5,
                  n_folds=2, seed=9)
    a = AutoWekaBaseline(**kwargs).run(small_ds)
    b = AutoWekaBaseline(**kwargs).run(small_ds)
    assert a.best_algorithm == b.best_algorithm
    assert a.validation_accuracy == b.validation_accuracy


def test_autoweka_history_records_all_configs(small_ds):
    result = AutoWekaBaseline(algorithms=ALGOS, time_budget_s=None,
                              max_config_evals=5, n_folds=2).run(small_ds)
    assert len(result.history) == 5
    for record in result.history:
        assert "algorithm" in record.config


def test_random_cash_variant(small_ds):
    result = RandomSearchCASH(algorithms=ALGOS, time_budget_s=None,
                              max_config_evals=5, n_folds=2, seed=1).run(small_ds)
    assert result.best_algorithm in ALGOS


def test_autoweka_time_budget_mode(small_ds):
    result = AutoWekaBaseline(algorithms=ALGOS, time_budget_s=0.5,
                              n_folds=2, seed=2).run(small_ds)
    assert result.elapsed_s < 10.0
    assert result.n_config_evals >= 1


def test_autoweka_full_space_one_eval(small_ds):
    # All 15 algorithms in the space; a single evaluation must still work.
    result = AutoWekaBaseline(time_budget_s=None, max_config_evals=1,
                              n_folds=2, seed=3).run(small_ds)
    assert result.n_config_evals == 1
