"""Unit tests for CSV/ARFF parsing."""

import numpy as np
import pytest

from repro.data import parse_arff_text, parse_csv_text, read_arff, read_csv
from repro.exceptions import DataError, ParseError

CSV = """age,color,label
25,red,yes
30,blue,no
?,red,yes
41,green,no
"""

ARFF = """% comment
@relation demo
@attribute age numeric
@attribute color {red,blue,green}
@attribute label {yes,no}
@data
25,red,yes
30,blue,no
?,red,yes
41,green,no
"""


def test_csv_basic_shapes():
    ds = parse_csv_text(CSV, target="label")
    assert ds.n_instances == 4
    assert ds.n_features == 2
    assert ds.n_classes == 2
    assert ds.feature_names == ["age", "color"]


def test_csv_type_inference():
    ds = parse_csv_text(CSV, target="label")
    assert not ds.categorical_mask[0]  # age numeric
    assert ds.categorical_mask[1]      # color categorical


def test_csv_missing_value_becomes_nan():
    ds = parse_csv_text(CSV, target="label")
    assert np.isnan(ds.X[2, 0])


def test_csv_label_encoding_sorted():
    ds = parse_csv_text(CSV, target="label")
    assert ds.class_names == ["no", "yes"]
    assert list(ds.y) == [1, 0, 1, 0]


def test_csv_target_by_index():
    ds = parse_csv_text(CSV, target=-1)
    assert ds.n_features == 2


def test_csv_no_header():
    text = "1,a,x\n2,b,y\n3,a,x\n"
    ds = parse_csv_text(text, target=-1, has_header=False)
    assert ds.feature_names == ["col0", "col1"]
    assert ds.n_classes == 2


def test_csv_unknown_target_raises():
    with pytest.raises(ParseError):
        parse_csv_text(CSV, target="nope")


def test_csv_target_index_out_of_range():
    with pytest.raises(ParseError):
        parse_csv_text(CSV, target=7)


def test_csv_empty_raises():
    with pytest.raises(ParseError):
        parse_csv_text("")


def test_csv_ragged_rows_raise():
    with pytest.raises(ParseError):
        parse_csv_text("a,b\n1,2\n3\n")


def test_csv_missing_label_raises():
    with pytest.raises(DataError):
        parse_csv_text("a,label\n1,x\n2,?\n")


def test_arff_basic():
    ds = parse_arff_text(ARFF)
    assert ds.name == "demo"
    assert ds.n_instances == 4
    assert ds.categorical_mask[1]
    assert not ds.categorical_mask[0]


def test_arff_nominal_codes_follow_declaration():
    ds = parse_arff_text(ARFF)
    # red=0, blue=1, green=2 per declared order
    assert list(ds.X[:, 1]) == [0.0, 1.0, 0.0, 2.0]
    # class order follows declaration: yes=0, no=1
    assert ds.class_names == ["yes", "no"]
    assert list(ds.y) == [0, 1, 0, 1]


def test_arff_missing_becomes_nan():
    ds = parse_arff_text(ARFF)
    assert np.isnan(ds.X[2, 0])


def test_arff_quoted_attribute_names():
    text = "@relation t\n@attribute 'my attr' numeric\n@attribute cls {a,b}\n@data\n1,a\n2,b\n"
    ds = parse_arff_text(text)
    assert ds.feature_names == ["my attr"]


def test_arff_undeclared_symbol_raises():
    bad = ARFF.replace("41,green,no", "41,purple,no")
    with pytest.raises(ParseError):
        parse_arff_text(bad)


def test_arff_sparse_rejected():
    text = "@relation t\n@attribute a numeric\n@attribute cls {x,y}\n@data\n{0 1}\n"
    with pytest.raises(ParseError):
        parse_arff_text(text)


def test_arff_no_data_raises():
    with pytest.raises(ParseError):
        parse_arff_text("@relation t\n@attribute a numeric\n@data\n")


def test_arff_no_attributes_raises():
    with pytest.raises(ParseError):
        parse_arff_text("@relation t\n@data\n1,2\n")


def test_file_roundtrip(tmp_path):
    csv_path = tmp_path / "demo.csv"
    csv_path.write_text(CSV)
    ds = read_csv(csv_path, target="label")
    assert ds.name == "demo"

    arff_path = tmp_path / "demo.arff"
    arff_path.write_text(ARFF)
    ds2 = read_arff(arff_path)
    assert ds2.n_instances == ds.n_instances
