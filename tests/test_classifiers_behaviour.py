"""Behavioural tests: each classifier's hyperparameters do what they claim."""

import numpy as np
import pytest

from repro.classifiers import (
    C50,
    DeepBoost,
    J48,
    KNN,
    LDA,
    LMT,
    NaiveBayes,
    Part,
    PLSDA,
    RandomForest,
    RPart,
    SVM,
    Bagging,
    NeuralNet,
    RDA,
)
from repro.classifiers.tree import count_leaves
from repro.exceptions import ConfigurationError


def _noisy_binary(n=240, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 5))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(np.int64)
    flip = rng.random(n) < 0.2
    y[flip] = 1 - y[flip]
    return X, y


# ----------------------------------------------------------------------- KNN
def test_knn_k1_memorises(tiny_ds):
    clf = KNN(k=1).fit(tiny_ds.X, tiny_ds.y)
    assert (clf.predict(tiny_ds.X) == tiny_ds.y).all()


def test_knn_large_k_approaches_majority(tiny_ds):
    clf = KNN(k=10_000).fit(tiny_ds.X, tiny_ds.y)
    majority = np.argmax(np.bincount(tiny_ds.y))
    assert (clf.predict(tiny_ds.X) == majority).all()


# ----------------------------------------------------------------------- SVM
@pytest.mark.parametrize("kernel", ["linear", "radial", "polynomial", "sigmoid"])
def test_svm_all_kernels_fit(kernel, tiny_ds):
    clf = SVM(kernel=kernel, cost=1.0).fit(tiny_ds.X, tiny_ds.y)
    accuracy = (clf.predict(tiny_ds.X) == tiny_ds.y).mean()
    assert accuracy > 0.6, kernel


def test_svm_rbf_separates_xor():
    rng = np.random.default_rng(0)
    X = rng.uniform(-1, 1, size=(200, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(np.int64)
    linear = SVM(kernel="linear").fit(X, y)
    radial = SVM(kernel="radial", gamma=2.0, cost=10.0).fit(X, y)
    acc_linear = (linear.predict(X) == y).mean()
    acc_radial = (radial.predict(X) == y).mean()
    assert acc_radial > 0.9
    assert acc_radial > acc_linear


def test_svm_invalid_kernel():
    with pytest.raises(ConfigurationError):
        SVM(kernel="bogus")


def test_svm_gamma_default_is_one_over_d(tiny_ds):
    clf = SVM(gamma=0.0).fit(tiny_ds.X, tiny_ds.y)
    assert clf._gamma_eff == pytest.approx(1.0 / tiny_ds.n_features)


# ---------------------------------------------------------------- NaiveBayes
def test_naive_bayes_kde_mode_differs_from_gaussian(multi_ds):
    gaussian = NaiveBayes(adjust=0.0).fit(multi_ds.X, multi_ds.y)
    kde = NaiveBayes(adjust=1.0).fit(multi_ds.X, multi_ds.y)
    assert not np.allclose(
        gaussian.predict_proba(multi_ds.X), kde.predict_proba(multi_ds.X)
    )


def test_naive_bayes_laplace_smooths_discrete():
    X = np.array([[0.0], [0.0], [1.0], [1.0], [2.0], [2.0]])
    y = np.array([0, 0, 1, 1, 0, 1])
    small = NaiveBayes(laplace=0.001).fit(X, y)
    big = NaiveBayes(laplace=100.0).fit(X, y)
    spread_small = np.ptp(small.predict_proba(X)[:, 0])
    spread_big = np.ptp(big.predict_proba(X)[:, 0])
    assert spread_big < spread_small  # heavy smoothing flattens the posteriors


# --------------------------------------------------------------------- trees
def test_rpart_cp_controls_leaf_count():
    X, y = _noisy_binary()
    loose = RPart(cp=0.0001, minsplit=2, minbucket=1).fit(X, y)
    tight = RPart(cp=0.25, minsplit=2, minbucket=1).fit(X, y)
    assert count_leaves(tight.flat_) <= count_leaves(loose.flat_)


def test_rpart_maxdepth_bounds_depth():
    from repro.classifiers.tree import tree_depth
    X, y = _noisy_binary()
    clf = RPart(maxdepth=2, cp=0.0001, minsplit=2, minbucket=1).fit(X, y)
    assert tree_depth(clf.flat_) <= 2


def test_j48_pruned_smaller_than_unpruned():
    X, y = _noisy_binary(seed=4)
    pruned = J48(pruned="pruned", confidence=0.05).fit(X, y)
    unpruned = J48(pruned="unpruned").fit(X, y)
    assert count_leaves(pruned.flat_) <= count_leaves(unpruned.flat_)


def test_j48_invalid_pruned_flag():
    with pytest.raises(ConfigurationError):
        J48(pruned="maybe")


def test_part_builds_rule_list(tiny_ds):
    clf = Part().fit(tiny_ds.X, tiny_ds.y)
    assert len(clf.decision_list_.rules) >= 1
    description = clf.describe_rules(tiny_ds.feature_names)
    assert "=> class" in description
    assert "DEFAULT" in description


def test_part_max_rules_cap():
    X, y = _noisy_binary(n=300, seed=5)
    clf = Part(max_rules=3, pruned="unpruned").fit(X, y)
    assert len(clf.decision_list_.rules) <= 3


def test_c50_boosting_improves_training_fit():
    X, y = _noisy_binary(seed=6)
    single = C50(trials=1).fit(X, y)
    boosted = C50(trials=10).fit(X, y)
    acc_single = (single.predict(X) == y).mean()
    acc_boosted = (boosted.predict(X) == y).mean()
    assert acc_boosted >= acc_single


def test_c50_winnow_restricts_features(tiny_ds):
    clf = C50(winnow="yes").fit(tiny_ds.X, tiny_ds.y)
    assert len(clf.feature_subset_) <= tiny_ds.n_features


def test_c50_rules_mode_predicts(tiny_ds):
    clf = C50(model="rules").fit(tiny_ds.X, tiny_ds.y)
    assert (clf.predict(tiny_ds.X) == tiny_ds.y).mean() > 0.8


def test_c50_invalid_options():
    with pytest.raises(ConfigurationError):
        C50(model="forest")
    with pytest.raises(ConfigurationError):
        C50(winnow="sometimes")


def test_random_forest_more_trees_stabler(multi_ds):
    small = RandomForest(ntree=2, seed=0).fit(multi_ds.X, multi_ds.y)
    large = RandomForest(ntree=40, seed=0).fit(multi_ds.X, multi_ds.y)
    # With more trees the probabilities move away from one-hot votes.
    assert len(np.unique(large.predict_proba(multi_ds.X))) >= len(
        np.unique(small.predict_proba(multi_ds.X))
    )


def test_random_forest_mtry_clipped(tiny_ds):
    clf = RandomForest(ntree=3, mtry=999).fit(tiny_ds.X, tiny_ds.y)
    assert (clf.predict(tiny_ds.X) == tiny_ds.y).mean() > 0.7


def test_bagging_seed_reproducible(multi_ds):
    a = Bagging(nbagg=5, seed=3).fit(multi_ds.X, multi_ds.y)
    b = Bagging(nbagg=5, seed=3).fit(multi_ds.X, multi_ds.y)
    assert np.allclose(a.predict_proba(multi_ds.X), b.predict_proba(multi_ds.X))


# --------------------------------------------------------------- discriminant
def test_lda_methods_all_work(multi_ds):
    for method in ("moment", "mle", "t"):
        clf = LDA(method=method).fit(multi_ds.X, multi_ds.y)
        assert (clf.predict(multi_ds.X) == multi_ds.y).mean() > 0.5


def test_lda_t_method_robust_to_outliers():
    rng = np.random.default_rng(7)
    X = np.vstack([rng.normal(-2, 1, size=(100, 2)), rng.normal(2, 1, size=(100, 2))])
    y = np.array([0] * 100 + [1] * 100)
    X_out = X.copy()
    X_out[:5] += 60.0  # gross outliers in class 0
    plain = LDA(method="moment").fit(X_out, y)
    robust = LDA(method="t", nu=3.0).fit(X_out, y)
    grid = rng.normal(scale=2.0, size=(400, 2))
    truth = (grid[:, 0] + grid[:, 1] > 0).astype(int)
    acc_plain = (plain.predict(grid) == truth).mean()
    acc_robust = (robust.predict(grid) == truth).mean()
    assert acc_robust >= acc_plain


def test_lda_invalid_method():
    with pytest.raises(ConfigurationError):
        LDA(method="magic")


def test_rda_endpoints_match_lda_and_qda_shapes(multi_ds):
    lda_like = RDA(gamma=0.0, lam=1.0).fit(multi_ds.X, multi_ds.y)
    qda_like = RDA(gamma=0.0, lam=0.0).fit(multi_ds.X, multi_ds.y)
    # lambda=1 pools covariances: all class covariance matrices identical.
    assert np.allclose(lda_like._covs[0], lda_like._covs[1])
    assert not np.allclose(qda_like._covs[0], qda_like._covs[1])


def test_rda_gamma_one_gives_spherical(multi_ds):
    clf = RDA(gamma=1.0, lam=0.5).fit(multi_ds.X, multi_ds.y)
    cov = clf._covs[0]
    assert np.allclose(cov, cov[0, 0] * np.eye(cov.shape[0]))


# ---------------------------------------------------------------------- PLSDA
def test_plsda_ncomp_limits_components(multi_ds):
    clf = PLSDA(ncomp=2).fit(multi_ds.X, multi_ds.y)
    assert clf._pls.n_components_ <= 2


def test_plsda_both_prob_methods(multi_ds):
    for method in ("softmax", "bayes"):
        clf = PLSDA(prob_method=method, ncomp=3).fit(multi_ds.X, multi_ds.y)
        proba = clf.predict_proba(multi_ds.X)
        assert np.allclose(proba.sum(axis=1), 1.0)


def test_plsda_invalid_method():
    with pytest.raises(ConfigurationError):
        PLSDA(prob_method="vote")


# ------------------------------------------------------------------ LMT / NN
def test_lmt_fits_leaf_models(tiny_ds):
    clf = LMT(iterations=20).fit(tiny_ds.X, tiny_ds.y)
    assert clf.global_model_ is not None
    accuracy = (clf.predict(tiny_ds.X) == tiny_ds.y).mean()
    assert accuracy > 0.8


def test_neural_net_size_changes_capacity():
    rng = np.random.default_rng(8)
    X = rng.uniform(-1, 1, size=(300, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(np.int64)  # XOR needs hidden units
    wide = NeuralNet(size=16, max_iter=300, seed=0).fit(X, y)
    assert (wide.predict(X) == y).mean() > 0.9


# ----------------------------------------------------------------- DeepBoost
def test_deep_boost_penalty_shrinks_ensemble():
    X, y = _noisy_binary(seed=9)
    free = DeepBoost(num_iter=20, beta=0.0, lam=0.0).fit(X, y)
    taxed = DeepBoost(num_iter=20, beta=0.4, lam=0.05).fit(X, y)
    free_size = sum(len(m.trees) for m in free.members_)
    taxed_size = sum(len(m.trees) for m in taxed.members_)
    assert taxed_size <= free_size


def test_deep_boost_both_losses(tiny_ds):
    for loss in ("logistic", "exponential"):
        clf = DeepBoost(loss=loss, num_iter=5).fit(tiny_ds.X, tiny_ds.y)
        assert (clf.predict(tiny_ds.X) == tiny_ds.y).mean() > 0.8


def test_deep_boost_invalid_loss():
    with pytest.raises(ConfigurationError):
        DeepBoost(loss="hinge")
