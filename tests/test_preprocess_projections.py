"""Unit tests for PCA / ICA (Table 2)."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.exceptions import ConfigurationError
from repro.preprocess import ICA, PCA


def _correlated(n=200, seed=0) -> Dataset:
    rng = np.random.default_rng(seed)
    latent = rng.normal(size=(n, 2))
    X = np.column_stack([
        latent[:, 0],
        0.9 * latent[:, 0] + 0.1 * rng.normal(size=n),
        latent[:, 1],
        latent[:, 1] + latent[:, 0],
        rng.normal(size=n) * 0.01,
    ])
    return Dataset(X=X, y=rng.integers(0, 2, size=n))


def test_pca_output_columns_uncorrelated():
    out = PCA(variance_kept=0.99).fit_transform(_correlated())
    corr = np.corrcoef(out.X.T)
    off_diag = corr - np.diag(np.diag(corr))
    assert np.abs(off_diag).max() < 0.05


def test_pca_explained_variance_sorted_and_reaches_threshold():
    pca = PCA(variance_kept=0.95).fit(_correlated())
    ratio = pca.explained_variance_ratio_
    assert (np.diff(ratio) <= 1e-12).all()


def test_pca_reduces_dimensionality_of_redundant_data():
    pca = PCA(variance_kept=0.95).fit(_correlated())
    assert pca.loadings_.shape[1] < 5


def test_pca_fixed_component_count():
    out = PCA(n_components=2).fit_transform(_correlated())
    assert out.n_features == 2
    assert out.feature_names == ["pc0", "pc1"]


def test_pca_train_test_consistency():
    ds = _correlated()
    pca = PCA(n_components=3).fit(ds)
    again = pca.transform(ds)
    direct = pca.transform(ds)
    assert np.allclose(again.X, direct.X)


def test_pca_keeps_categoricals(mixed_ds):
    out = PCA(n_components=2).fit_transform(mixed_ds)
    n_cat = int(mixed_ds.categorical_mask.sum())
    assert out.n_features == 2 + n_cat
    assert int(out.categorical_mask.sum()) == n_cat


def test_pca_invalid_threshold():
    with pytest.raises(ConfigurationError):
        PCA(variance_kept=0.0)


def test_ica_recovers_independent_sources():
    rng = np.random.default_rng(4)
    n = 500
    s1 = rng.uniform(-1, 1, size=n)             # non-Gaussian sources
    s2 = np.sign(rng.normal(size=n)) * rng.uniform(0.5, 1.0, size=n)
    sources = np.column_stack([s1, s2])
    mixing = np.array([[1.0, 0.6], [0.4, 1.0]])
    X = sources @ mixing.T
    ds = Dataset(X=X, y=rng.integers(0, 2, size=n))
    out = ICA(n_components=2, seed=0).fit_transform(ds)
    # Each recovered component should correlate strongly with one source.
    corr = np.abs(np.corrcoef(out.X.T, sources.T)[:2, 2:])
    assert corr.max(axis=1).min() > 0.9


def test_ica_components_roughly_uncorrelated():
    out = ICA(n_components=3, seed=1).fit_transform(_correlated())
    corr = np.corrcoef(out.X.T)
    off = corr - np.diag(np.diag(corr))
    assert np.abs(off).max() < 0.1


def test_ica_deterministic_given_seed():
    ds = _correlated()
    a = ICA(n_components=2, seed=5).fit_transform(ds)
    b = ICA(n_components=2, seed=5).fit_transform(ds)
    assert np.allclose(a.X, b.X)


def test_projections_on_pure_categorical_noop():
    rng = np.random.default_rng(6)
    ds = Dataset(
        X=rng.integers(0, 3, size=(30, 2)).astype(float),
        y=rng.integers(0, 2, size=30),
        categorical_mask=np.array([True, True]),
    )
    for transformer in (PCA(), ICA()):
        out = transformer.fit_transform(ds)
        assert np.array_equal(out.X, ds.X)
