"""Execution backends, shared-memory fold substrates and dispatch determinism.

Covers the PR-6 parallel subsystem end to end:

* backend primitives — order preservation, validation, broken-pool
  recovery;
* :class:`SharedArrayPool` / :class:`WorkerContext` — digest-deduplicated
  publication, zero-copy read-only attachment, digest-mismatch fallback,
  segment lifecycle (close / GC / orphan sweep);
* worker-aware budget allocation (LPT makespan rescaling);
* config/backend validation;
* the headline determinism contract: ``backend="process"`` ==
  ``backend="thread"`` == ``backend="serial"`` bit for bit under
  evaluation-count budgets, including the degraded paths (broken pool,
  shared memory unavailable) — checked property-style across seeds.
"""

from __future__ import annotations

import logging
import os
from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SmartMLConfig
from repro.data import SyntheticSpec, make_dataset
from repro.exceptions import ConfigurationError
from repro.hpo import allocate_budget, predicted_makespan, uniform_budget
from repro.kb.similarity import Nomination
from repro.parallel import (
    ArrayHandle,
    ProcessBackend,
    ProcessBackendUnavailable,
    SerialBackend,
    SharedArrayPool,
    ThreadBackend,
    WorkerContext,
    array_digest,
    execute_candidates,
    get_backend,
    release_orphaned_segments,
    validate_backend_name,
)
from repro.parallel import dispatch as dispatch_module
from repro.parallel import shared as shared_module


def _square(x: int) -> int:
    return x * x


def _crash(_x: int) -> int:  # pragma: no cover - runs in a worker process
    os._exit(13)


# ------------------------------------------------------------------ backends
class TestBackendPrimitives:
    def test_validate_backend_name(self):
        for name in ("serial", "thread", "process"):
            assert validate_backend_name(name) == name
        with pytest.raises(ConfigurationError, match="unknown execution backend"):
            validate_backend_name("fork")

    def test_get_backend_selection(self):
        assert isinstance(get_backend("serial", 4), SerialBackend)
        assert isinstance(get_backend("thread", 4), ThreadBackend)
        assert isinstance(get_backend("process", 4), ProcessBackend)
        # One worker never pays pool overhead, whatever the name.
        assert isinstance(get_backend("process", 1), SerialBackend)

    def test_worker_counts_validated(self):
        with pytest.raises(ConfigurationError):
            ThreadBackend(0)
        with pytest.raises(ConfigurationError):
            ProcessBackend(0)

    @pytest.mark.parametrize(
        "backend", [SerialBackend(), ThreadBackend(3), ProcessBackend(2)]
    )
    def test_map_preserves_submission_order(self, backend):
        items = list(range(7))
        assert backend.map(_square, items) == [x * x for x in items]

    def test_broken_pool_raises_and_recovers(self):
        backend = ProcessBackend(2)
        with pytest.raises(ProcessBackendUnavailable):
            backend.map(_crash, [1, 2])
        # The broken pool was evicted: the next plan gets a fresh one.
        assert backend.map(_square, [3, 4]) == [9, 16]

    def test_unpicklable_payload_raises_unavailable(self):
        backend = ProcessBackend(2)
        with pytest.raises(ProcessBackendUnavailable):
            backend.map(_square, [lambda: None, lambda: None])
        assert backend.map(_square, [5, 6]) == [25, 36]


# ------------------------------------------------------- shared-memory pool
class TestSharedArrayPool:
    def test_publish_dedupes_by_content(self):
        pool = SharedArrayPool()
        try:
            a = np.arange(12, dtype=np.float64).reshape(3, 4)
            h1 = pool.publish(a)
            h2 = pool.publish(a.copy())  # equal content, different object
            assert h1 == h2
            assert len(pool.segment_names) == 1
            h3 = pool.publish(a + 1.0)
            assert h3.name != h1.name
        finally:
            pool.close()

    def test_handle_roundtrip_zero_copy_readonly(self):
        pool = SharedArrayPool()
        ctx = WorkerContext()
        try:
            a = np.linspace(0.0, 1.0, 20).reshape(4, 5)
            handle = pool.publish(a)
            view = ctx.attach(handle)
            np.testing.assert_array_equal(view, a)
            assert not view.flags.writeable
            # Repeated attach returns the *same object* — the property the
            # identity-keyed presort/substrate registries rely on.
            assert ctx.attach(handle) is view
        finally:
            ctx.detach_all()
            pool.close()

    def test_digest_mismatch_falls_back_to_private_copy(self, caplog):
        pool = SharedArrayPool()
        ctx = WorkerContext()
        try:
            a = np.arange(6, dtype=np.float64)
            good = pool.publish(a)
            stale = ArrayHandle(
                name=good.name, digest="0" * 32, shape=good.shape,
                dtype=good.dtype,
            )
            with caplog.at_level(logging.WARNING, logger="repro.parallel"):
                recovered = ctx.attach(stale)
            assert any("digest" in r.message for r in caplog.records)
            np.testing.assert_array_equal(recovered, a)
            # A mismatch is never cached or shared.
            assert ctx.attach(stale) is not recovered
        finally:
            ctx.detach_all()
            pool.close()

    def test_close_unlinks_segments(self):
        pool = SharedArrayPool()
        handle = pool.publish(np.ones(8))
        pool.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.name)
        pool.close()  # idempotent

    def test_orphaned_segments_are_swept(self):
        pool = SharedArrayPool()
        handle = pool.publish(np.ones(4))
        name = handle.name
        # Simulate a dispatcher that died mid-fan-out: the owner weakref
        # dies without close() having run.
        pool._finalizer.detach()
        del pool
        assert release_orphaned_segments() >= 1
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_gc_finalizer_unlinks_segments(self):
        pool = SharedArrayPool()
        handle = pool.publish(np.ones(4))
        name = handle.name
        del pool
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_array_digest_sensitivity(self):
        a = np.arange(6, dtype=np.float64)
        assert array_digest(a) == array_digest(a.copy())
        assert array_digest(a) != array_digest(a.reshape(2, 3))
        assert array_digest(a) != array_digest(a.astype(np.float32))
        b = a.copy()
        b[0] += 1.0
        assert array_digest(a) != array_digest(b)


# ------------------------------------------------------------ config surface
class TestConfigBackend:
    def test_default_and_roundtrip(self):
        config = SmartMLConfig(time_budget_s=1.0)
        assert config.backend == "thread"
        assert SmartMLConfig.from_dict(config.to_dict()).backend == "thread"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown execution backend"):
            SmartMLConfig(time_budget_s=1.0, backend="mpi")

    def test_serial_backend_requires_one_job(self):
        with pytest.raises(ConfigurationError, match="serial"):
            SmartMLConfig(time_budget_s=1.0, backend="serial", n_jobs=4)
        SmartMLConfig(time_budget_s=1.0, backend="serial", n_jobs=1)

    def test_process_backend_accepted(self):
        config = SmartMLConfig(time_budget_s=1.0, backend="process", n_jobs=4)
        assert config.to_dict()["backend"] == "process"


# -------------------------------------------------- worker-aware allocation
class TestWorkerAwareBudget:
    ALGOS = ["random_forest", "svm", "knn", "lda"]

    def test_one_worker_sums_to_total(self):
        shares = allocate_budget(30.0, self.ALGOS)
        assert sum(shares.values()) == pytest.approx(30.0)
        assert uniform_budget(30.0, self.ALGOS)["knn"] == pytest.approx(7.5)

    def test_concurrent_schedule_hits_wall_clock(self):
        for workers in (2, 3, 4):
            shares = allocate_budget(30.0, self.ALGOS, workers=workers)
            assert predicted_makespan(shares, workers) == pytest.approx(30.0)

    def test_proportions_preserved_under_scaling(self):
        sequential = allocate_budget(30.0, self.ALGOS)
        concurrent = allocate_budget(30.0, self.ALGOS, workers=2)
        ratio = {a: concurrent[a] / sequential[a] for a in self.ALGOS}
        first = next(iter(ratio.values()))
        for value in ratio.values():
            assert value == pytest.approx(first)
        # Concurrency can only grant each algorithm *more* time.
        assert first >= 1.0

    def test_more_workers_than_algorithms_caps_at_longest(self):
        shares = allocate_budget(30.0, self.ALGOS, workers=16)
        # Every algorithm runs concurrently; the longest share IS the wall
        # clock, so it is scaled up to the full budget.
        assert max(shares.values()) == pytest.approx(30.0)

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            allocate_budget(30.0, self.ALGOS, workers=0)
        with pytest.raises(ConfigurationError):
            uniform_budget(30.0, self.ALGOS, workers=-1)

    def test_makespan_deterministic_tie_break(self):
        shares = {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0}
        assert predicted_makespan(shares, 2) == pytest.approx(2.0)
        assert predicted_makespan(dict(reversed(list(shares.items()))), 2) == (
            pytest.approx(2.0)
        )


# --------------------------------------------------- dispatch determinism
def _dispatch_problem(seed: int):
    ds = make_dataset(
        SyntheticSpec(
            name=f"dispatch-{seed}", n_instances=90, n_features=5, n_classes=2,
            n_informative=3, class_sep=2.0, seed=seed,
        )
    )
    split = 60
    X_train, y_train = ds.X[:split], ds.y[:split]
    X_val, y_val = ds.X[split:], ds.y[split:]
    nominations = [
        Nomination(algorithm="knn", score=1.0),
        Nomination(algorithm="lda", score=0.9, warm_configs=[{"method": "mle"}]),
        Nomination(algorithm="naive_bayes", score=0.8),
    ]
    budgets = {n.algorithm: None for n in nominations}
    seeds = [seed + 1, seed + 2, seed + 3]
    return nominations, seeds, budgets, X_train, y_train, X_val, y_val


def _config(backend: str, n_jobs: int) -> SmartMLConfig:
    return SmartMLConfig(
        max_evals_per_algorithm=2, n_folds=2, n_jobs=n_jobs, backend=backend,
    )


def _signature(results) -> list[tuple]:
    return [
        (
            r.algorithm, r.best_config, r.cv_error, r.validation_accuracy,
            r.n_config_evals, r.n_fold_evals, r.warm_started,
        )
        for r in results
    ]


def _run_backend(backend: str, n_jobs: int, seed: int):
    nominations, seeds, budgets, X_tr, y_tr, X_va, y_va = _dispatch_problem(seed)
    return execute_candidates(
        nominations, seeds, budgets, _config(backend, n_jobs),
        X_tr, y_tr, X_va, y_va, 2,
    )


class TestDispatchDeterminism:
    @settings(
        max_examples=3, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_process_thread_serial_identity(self, seed):
        serial = _signature(_run_backend("serial", 1, seed))
        assert _signature(_run_backend("thread", 2, seed)) == serial
        assert _signature(_run_backend("process", 2, seed)) == serial

    def test_results_come_back_in_nomination_order(self):
        results = _run_backend("thread", 3, seed=5)
        assert [r.algorithm for r in results] == ["knn", "lda", "naive_bayes"]

    def test_seed_count_mismatch_rejected(self):
        nominations, _seeds, budgets, X_tr, y_tr, X_va, y_va = _dispatch_problem(0)
        with pytest.raises(ValueError, match="seed per nomination"):
            execute_candidates(
                nominations, [1, 2], budgets, _config("serial", 1),
                X_tr, y_tr, X_va, y_va, 2,
            )

    def test_broken_pool_degrades_to_thread_identically(self, monkeypatch, caplog):
        serial = _signature(_run_backend("serial", 1, seed=7))

        def broken_map(self, fn, items):
            raise ProcessBackendUnavailable("injected worker crash")

        monkeypatch.setattr(dispatch_module.ProcessBackend, "map", broken_map)
        with caplog.at_level(logging.WARNING, logger="repro.parallel"):
            degraded = _signature(_run_backend("process", 2, seed=7))
        assert degraded == serial
        assert any("falling back" in r.message for r in caplog.records)

    def test_shm_unavailable_degrades_to_thread_identically(
        self, monkeypatch, caplog
    ):
        serial = _signature(_run_backend("serial", 1, seed=9))

        def no_shm(self, array):
            raise OSError("no space left on /dev/shm")

        monkeypatch.setattr(dispatch_module.SharedArrayPool, "publish", no_shm)
        with caplog.at_level(logging.WARNING, logger="repro.parallel"):
            degraded = _signature(_run_backend("process", 2, seed=9))
        assert degraded == serial
        assert any("falling back" in r.message for r in caplog.records)

    def test_process_run_leaves_no_segments_behind(self):
        before = set(shared_module._OWNED_SEGMENTS)
        _run_backend("process", 2, seed=11)
        assert set(shared_module._OWNED_SEGMENTS) == before
