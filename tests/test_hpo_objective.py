"""Unit tests for the cross-validation objective and its cache."""

import numpy as np
import pytest

from repro.classifiers import make_classifier
from repro.hpo import CrossValObjective, classifier_space


@pytest.fixture
def objective(multi_ds):
    return CrossValObjective(
        lambda config: make_classifier("rpart", **config),
        multi_ds.X, multi_ds.y, n_classes=multi_ds.n_classes, n_folds=4, seed=0,
    )


def _key(config):
    return classifier_space("rpart").config_key(config)


def test_fold_errors_in_unit_interval(objective):
    config = classifier_space("rpart").default_config()
    for fold in range(objective.n_folds):
        error = objective.evaluate_fold(config, _key(config), fold)
        assert 0.0 <= error <= 1.0


def test_evaluate_subset_of_folds(objective):
    config = classifier_space("rpart").default_config()
    partial = objective.evaluate(config, _key(config), fold_ids=[0, 1])
    assert objective.evaluated_folds(_key(config)) == [0, 1]
    full = objective.evaluate(config, _key(config))
    assert objective.evaluated_folds(_key(config)) == [0, 1, 2, 3]
    assert 0.0 <= partial <= 1.0 and 0.0 <= full <= 1.0


def test_known_mean_tracks_evaluated_folds(objective):
    config = classifier_space("rpart").default_config()
    key = _key(config)
    assert objective.known_mean(key) is None
    e0 = objective.evaluate_fold(config, key, 0)
    assert objective.known_mean(key) == pytest.approx(e0)
    e1 = objective.evaluate_fold(config, key, 1)
    assert objective.known_mean(key) == pytest.approx((e0 + e1) / 2)


def test_cache_counts_only_new_fits(objective):
    config = classifier_space("rpart").default_config()
    key = _key(config)
    objective.evaluate(config, key)
    assert objective.n_fold_evaluations == 4
    objective.evaluate(config, key)          # fully cached
    assert objective.n_fold_evaluations == 4
    other = dict(config, maxdepth=3)
    objective.evaluate(other, _key(other), fold_ids=[0])
    assert objective.n_fold_evaluations == 5


def test_distinct_configs_do_not_collide(objective):
    space = classifier_space("rpart")
    a = space.default_config()
    b = dict(a, cp=0.2)
    assert _key(a) != _key(b)
    error_a = objective.evaluate(a, _key(a), fold_ids=[0])
    error_b = objective.evaluate(b, _key(b), fold_ids=[0])
    # Different pruning on noisy folds usually differs; at minimum the
    # cache must keep them separate.
    assert objective.evaluated_folds(_key(a)) == [0]
    assert objective.evaluated_folds(_key(b)) == [0]
    assert 0.0 <= error_a <= 1.0 and 0.0 <= error_b <= 1.0


def test_total_fit_seconds_accumulates(objective):
    config = classifier_space("rpart").default_config()
    objective.evaluate(config, _key(config))
    assert objective.total_fit_seconds > 0.0


def test_factory_receives_config_verbatim(multi_ds):
    seen = []

    def factory(config):
        seen.append(dict(config))
        return make_classifier("knn", k=int(config["k"]))

    objective = CrossValObjective(
        factory, multi_ds.X, multi_ds.y, n_classes=multi_ds.n_classes,
        n_folds=2, seed=0,
    )
    objective.evaluate({"k": 7}, (("k", "7"),))
    assert all(config == {"k": 7} for config in seen)
    assert len(seen) == 2  # one model per fold
