"""Unit tests for the Table-4 dataset registry and KB corpus."""

import numpy as np
import pytest

from repro.data import (
    TABLE4_CARDS,
    eval_dataset_names,
    kb_corpus_specs,
    load_eval_dataset,
    load_kb_corpus,
)


def test_ten_evaluation_datasets_in_paper_order():
    names = eval_dataset_names()
    assert len(names) == 10
    assert names[0] == "abalone"
    assert names[-1] == "kin8nm"


def test_cards_record_paper_numbers():
    by_key = {c.key: c for c in TABLE4_CARDS}
    gisette = by_key["gisette"]
    assert gisette.paper_attributes == 5000
    assert gisette.paper_classes == 2
    assert gisette.paper_instances == 2800
    assert gisette.paper_autoweka_accuracy == pytest.approx(93.71)
    assert gisette.paper_smartml_accuracy == pytest.approx(96.48)
    assert gisette.paper_gap == pytest.approx(2.77, abs=1e-6)


def test_paper_reports_smartml_wins_everywhere():
    for card in TABLE4_CARDS:
        assert card.paper_gap > 0, card.key


def test_load_eval_dataset_matches_spec():
    ds = load_eval_dataset("yeast")
    card = {c.key: c for c in TABLE4_CARDS}["yeast"]
    assert ds.n_instances == card.spec.n_instances
    assert ds.n_features == card.spec.n_features
    assert ds.n_classes == card.spec.n_classes


def test_load_eval_dataset_unknown_key():
    with pytest.raises(KeyError):
        load_eval_dataset("not-a-dataset")


def test_eval_datasets_laptop_scale():
    for card in TABLE4_CARDS:
        assert card.spec.n_instances <= 800
        assert card.spec.n_features <= 64


def test_kb_corpus_deterministic_and_diverse():
    specs_a = kb_corpus_specs(n=50, seed=7)
    specs_b = kb_corpus_specs(n=50, seed=7)
    assert specs_a == specs_b
    assert len({s.n_classes for s in specs_a}) >= 4
    assert len({s.n_features for s in specs_a}) >= 10


def test_kb_corpus_names_unique():
    specs = kb_corpus_specs(n=50)
    names = [s.name for s in specs]
    assert len(set(names)) == 50


def test_load_kb_corpus_small():
    corpus = load_kb_corpus(n=3, seed=1)
    assert len(corpus) == 3
    for ds in corpus:
        assert (np.bincount(ds.y) > 0).sum() == ds.n_classes
