"""Unit + integration tests for the knowledge base."""

import numpy as np
import pytest

from repro.data import SyntheticSpec, make_dataset
from repro.exceptions import KnowledgeBaseError
from repro.kb import KnowledgeBase, bootstrap_knowledge_base
from repro.metafeatures import extract_metafeatures


def _mf(seed=0, **kwargs):
    defaults = dict(name=f"d{seed}", n_instances=60, n_features=5, n_classes=2, seed=seed)
    defaults.update(kwargs)
    return extract_metafeatures(make_dataset(SyntheticSpec(**defaults)))


def test_add_and_count():
    kb = KnowledgeBase()
    dataset_id = kb.add_dataset("d0", _mf(0))
    kb.add_run(dataset_id, "knn", {"k": 3}, accuracy=0.8)
    assert kb.n_datasets() == 1
    assert kb.n_runs() == 1


def test_add_run_unknown_dataset_raises():
    kb = KnowledgeBase()
    with pytest.raises(KnowledgeBaseError):
        kb.add_run(999, "knn", {}, accuracy=0.5)


def test_leaderboard_keeps_best_per_algorithm():
    kb = KnowledgeBase()
    dataset_id = kb.add_dataset("d0", _mf(0))
    kb.add_run(dataset_id, "knn", {"k": 3}, accuracy=0.70)
    kb.add_run(dataset_id, "knn", {"k": 7}, accuracy=0.85)
    kb.add_run(dataset_id, "svm", {"cost": 1.0}, accuracy=0.75)
    board = kb.leaderboard(dataset_id)
    assert ("knn", 0.85, {"k": 7}) in board
    assert len(board) == 2


def test_all_leaderboards_matches_individual():
    kb = KnowledgeBase()
    ids = [kb.add_dataset(f"d{i}", _mf(i)) for i in range(3)]
    for i, dataset_id in enumerate(ids):
        kb.add_run(dataset_id, "knn", {"k": i + 1}, accuracy=0.5 + 0.1 * i)
    boards = kb.all_leaderboards()
    for dataset_id in ids:
        assert boards[dataset_id] == kb.leaderboard(dataset_id)


def test_similar_datasets_finds_same_shape():
    kb = KnowledgeBase()
    near_id = kb.add_dataset("near", _mf(1, n_instances=60, n_features=5, n_classes=2))
    kb.add_dataset("far", _mf(2, n_instances=400, n_features=40, n_classes=10))
    query = _mf(3, n_instances=64, n_features=5, n_classes=2)
    neighbors = kb.similar_datasets(query, k=1)
    assert neighbors[0].dataset_id == near_id


def test_nominate_empty_kb_returns_nothing():
    kb = KnowledgeBase()
    assert kb.nominate(_mf(0)) == []


def test_nominate_returns_algorithms_with_configs():
    kb = KnowledgeBase()
    dataset_id = kb.add_dataset("d0", _mf(0))
    kb.add_run(dataset_id, "rpart", {"cp": 0.01, "minsplit": 5, "minbucket": 2, "maxdepth": 8},
               accuracy=0.9)
    kb.add_run(dataset_id, "knn", {"k": 3}, accuracy=0.6)
    nominations = kb.nominate(_mf(1), n_algorithms=2)
    assert nominations[0].algorithm == "rpart"
    assert nominations[0].warm_configs


def test_nominate_distance_mode():
    kb = KnowledgeBase()
    dataset_id = kb.add_dataset("d0", _mf(0))
    kb.add_run(dataset_id, "lda", {"method": "moment", "nu": 5.0}, accuracy=0.8)
    nominations = kb.nominate(_mf(1), mode="distance")
    assert nominations[0].algorithm == "lda"


def test_persistence_roundtrip(tmp_path):
    path = tmp_path / "kb.jsonl"
    with KnowledgeBase(path) as kb:
        dataset_id = kb.add_dataset("d0", _mf(0))
        kb.add_run(dataset_id, "knn", {"k": 5}, accuracy=0.77)
    with KnowledgeBase(path) as reopened:
        assert reopened.n_datasets() == 1
        assert reopened.n_runs() == 1
        nominations = reopened.nominate(_mf(1), n_algorithms=1)
        assert nominations[0].algorithm == "knn"


def test_dataset_vectors_shape():
    kb = KnowledgeBase()
    for i in range(3):
        kb.add_dataset(f"d{i}", _mf(i))
    ids, matrix = kb.dataset_vectors()
    assert len(ids) == 3
    assert matrix.shape == (3, 25)


def test_bootstrap_small_corpus():
    kb = KnowledgeBase()
    corpus = [
        make_dataset(SyntheticSpec(name=f"c{i}", n_instances=50, n_features=4,
                                   n_classes=2, seed=i))
        for i in range(2)
    ]
    bootstrap_knowledge_base(
        kb, corpus, algorithms=["knn", "rpart", "lda"],
        configs_per_algorithm=2, n_folds=2, seed=0,
    )
    assert kb.n_datasets() == 2
    assert kb.n_runs() == 6
    for dataset_id, _ in kb.store.scan("datasets"):
        board = kb.leaderboard(dataset_id)
        assert {algo for algo, _, _ in board} == {"knn", "rpart", "lda"}
        for _, accuracy, _ in board:
            assert 0.0 <= accuracy <= 1.0


def test_bootstrap_then_nominate_end_to_end():
    kb = KnowledgeBase()
    corpus = [
        make_dataset(SyntheticSpec(name=f"c{i}", n_instances=60, n_features=5,
                                   n_classes=2, class_sep=2.5, seed=i))
        for i in range(3)
    ]
    bootstrap_knowledge_base(
        kb, corpus, algorithms=["knn", "lda"], configs_per_algorithm=2, n_folds=2,
    )
    nominations = kb.nominate(_mf(9, class_sep=2.5), n_algorithms=2)
    assert len(nominations) == 2
    assert {n.algorithm for n in nominations} == {"knn", "lda"}


def test_add_result_batch_matches_sequential_path(tmp_path):
    runs = [
        {"algorithm": "knn", "config": {"k": 3}, "accuracy": 0.8, "n_folds": 2, "budget_s": 1.0},
        {"algorithm": "svm", "config": {"cost": 2.0}, "accuracy": 0.7},
    ]
    batch_path = tmp_path / "batch.jsonl"
    seq_path = tmp_path / "seq.jsonl"

    batched = KnowledgeBase(batch_path)
    batch_id = batched.add_result_batch("d0", _mf(0), runs)
    batched.close()

    sequential = KnowledgeBase(seq_path)
    seq_id = sequential.add_dataset("d0", _mf(0))
    for run in runs:
        sequential.add_run(
            seq_id,
            run["algorithm"],
            run["config"],
            accuracy=run["accuracy"],
            n_folds=run.get("n_folds", 0),
            budget_s=run.get("budget_s", 0.0),
        )
    sequential.close()

    assert batch_id == seq_id
    # Identical ids, identical log bytes: the batch is a drop-in for the
    # sequential add_dataset + N x add_run path.
    assert batch_path.read_text() == seq_path.read_text()


def test_add_result_batch_invalidates_similarity_cache():
    kb = KnowledgeBase()
    kb.add_result_batch("d0", _mf(0), [{"algorithm": "knn", "config": {}, "accuracy": 0.9}])
    assert kb.similar_datasets(_mf(1), k=1)  # builds the cache
    kb.add_result_batch("d2", _mf(2), [{"algorithm": "svm", "config": {}, "accuracy": 0.6}])
    neighbors = kb.similar_datasets(_mf(2), k=2)
    assert len(neighbors) == 2  # sees the new dataset: cache was invalidated
