"""End-to-end prediction through a SmartML result — both provenances.

Every behavioural test here runs twice: once against the in-process result
a ``SmartML.run`` call returned, and once against the same result after a
round-trip through the model registry (register -> reload -> ``to_result``).
The two must be interchangeable — same shapes, same guarantees, and for
the reload, the *same bits* — because the serving layer promises exactly
that: a registered model predicts what the in-memory model predicted.
"""

import numpy as np
import pytest

from repro import SmartML, SmartMLConfig
from repro.core.result import SmartMLResult
from repro.data import SyntheticSpec, make_dataset
from repro.evaluation import accuracy
from repro.exceptions import NotFittedError
from repro.serving import ModelRegistry

FAST = dict(
    time_budget_s=None,
    max_evals_per_algorithm=2,
    n_folds=2,
    fallback_portfolio=["knn", "rpart"],
    n_algorithms=2,
)

ROUTES = ["in_process", "registry"]


@pytest.fixture(scope="module")
def train_and_fresh():
    # One generating process, disjoint rows: the held-back slice plays the
    # role of genuinely new data arriving after deployment.
    full = make_dataset(
        SyntheticSpec(name="deploy", n_instances=180, n_features=6, n_classes=2,
                      class_sep=2.2, missing_ratio=0.03, seed=61)
    )
    rows = np.arange(full.n_instances)
    train = full.subset(rows[:120], name="train")
    fresh = full.subset(rows[120:], name="fresh")
    return train, fresh


@pytest.fixture(scope="module")
def runs(train_and_fresh):
    """One SmartML run per config variant, shared by both routes."""
    train, _ = train_and_fresh
    return {
        "scaled": SmartML().run(
            train, SmartMLConfig(preprocessing=["center", "scale"], **FAST)
        ),
        "plain": SmartML().run(train, SmartMLConfig(**FAST)),
        "ensemble": SmartML().run(train, SmartMLConfig(ensemble=True, **FAST)),
        "featsel": SmartML().run(train, SmartMLConfig(feature_selection_k=3, **FAST)),
    }


def _route_result(result: SmartMLResult, route: str, train) -> SmartMLResult:
    """The result itself, or its registry-round-tripped twin."""
    if route == "in_process":
        return result
    registry = ModelRegistry()  # in-memory: same codec/framing, no disk
    registry.register("twin", result, dataset=train)
    return registry.load("twin").to_result()


@pytest.mark.parametrize("route", ROUTES)
def test_predict_on_raw_dataset(train_and_fresh, runs, route):
    train, fresh = train_and_fresh
    served = _route_result(runs["scaled"], route, train)
    predictions = served.predict(fresh)
    assert predictions.shape == (fresh.n_instances,)
    # Same generating process: the model must clearly beat chance.
    assert accuracy(fresh.y, predictions) > 0.7


@pytest.mark.parametrize("route", ROUTES)
def test_predict_handles_missing_values(train_and_fresh, runs, route):
    train, fresh = train_and_fresh
    served = _route_result(runs["plain"], route, train)
    withheld = fresh.copy()
    withheld.X[0, :3] = np.nan
    predictions = served.predict(withheld)
    assert predictions.shape == (fresh.n_instances,)


@pytest.mark.parametrize("route", ROUTES)
def test_predict_proba_normalised(train_and_fresh, runs, route):
    train, fresh = train_and_fresh
    served = _route_result(runs["plain"], route, train)
    proba = served.predict_proba(fresh)
    assert proba.shape == (fresh.n_instances, train.n_classes)
    assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)


@pytest.mark.parametrize("route", ROUTES)
def test_predict_through_ensemble(train_and_fresh, runs, route):
    train, fresh = train_and_fresh
    assert runs["ensemble"].ensemble is not None
    served = _route_result(runs["ensemble"], route, train)
    assert served.ensemble is not None, "registry must carry the ensemble too"
    direct = served.predict(fresh)
    via_ensemble = served.predict(fresh, use_ensemble=True)
    assert via_ensemble.shape == direct.shape


@pytest.mark.parametrize("route", ROUTES)
def test_predict_consistent_with_feature_selection(train_and_fresh, runs, route):
    train, fresh = train_and_fresh
    served = _route_result(runs["featsel"], route, train)
    predictions = served.predict(fresh)  # pipeline reduces to 3 columns itself
    assert predictions.shape == (fresh.n_instances,)


@pytest.mark.parametrize("variant", ["scaled", "plain", "ensemble", "featsel"])
def test_routes_agree_bit_for_bit(train_and_fresh, runs, variant):
    # The serving guarantee itself: the registry twin is not merely close,
    # it is the same function.
    train, fresh = train_and_fresh
    in_process = runs[variant]
    registry_twin = _route_result(in_process, "registry", train)
    assert np.array_equal(in_process.predict(fresh), registry_twin.predict(fresh))
    assert np.array_equal(
        in_process.predict_proba(fresh), registry_twin.predict_proba(fresh)
    )
    if in_process.ensemble is not None:
        assert np.array_equal(
            in_process.predict(fresh, use_ensemble=True),
            registry_twin.predict(fresh, use_ensemble=True),
        )


def test_registry_twin_carries_run_summary(train_and_fresh, runs):
    train, _ = train_and_fresh
    source = runs["plain"]
    twin = _route_result(source, "registry", train)
    assert twin.best_algorithm == source.best_algorithm
    assert twin.dataset_name == source.dataset_name
    assert twin.validation_accuracy == source.validation_accuracy
    assert twin.best_config == {
        k: (v.item() if hasattr(v, "item") else v)
        for k, v in source.best_config.items()
    }


def test_predict_without_pipeline_raises():
    bare = SmartMLResult(
        dataset_name="x", best_algorithm="knn", best_config={},
        validation_accuracy=0.0, model=None,
    )
    ds = make_dataset(SyntheticSpec(name="d", n_instances=10, n_features=2,
                                    n_classes=2, seed=1))
    with pytest.raises(NotFittedError):
        bare.predict(ds)
