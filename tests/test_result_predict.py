"""Tests for end-to-end prediction through a SmartML result."""

import numpy as np
import pytest

from repro import SmartML, SmartMLConfig
from repro.core.result import SmartMLResult
from repro.data import SyntheticSpec, make_dataset
from repro.evaluation import accuracy
from repro.exceptions import NotFittedError

FAST = dict(
    time_budget_s=None,
    max_evals_per_algorithm=2,
    n_folds=2,
    fallback_portfolio=["knn", "rpart"],
    n_algorithms=2,
)


@pytest.fixture
def train_and_fresh():
    # One generating process, disjoint rows: the held-back slice plays the
    # role of genuinely new data arriving after deployment.
    full = make_dataset(
        SyntheticSpec(name="deploy", n_instances=180, n_features=6, n_classes=2,
                      class_sep=2.2, missing_ratio=0.03, seed=61)
    )
    rows = np.arange(full.n_instances)
    train = full.subset(rows[:120], name="train")
    fresh = full.subset(rows[120:], name="fresh")
    return train, fresh


def test_predict_on_raw_dataset(train_and_fresh):
    train, fresh = train_and_fresh
    result = SmartML().run(train, SmartMLConfig(preprocessing=["center", "scale"], **FAST))
    predictions = result.predict(fresh)
    assert predictions.shape == (fresh.n_instances,)
    # Same generating process: the model must clearly beat chance.
    assert accuracy(fresh.y, predictions) > 0.7


def test_predict_handles_missing_values(train_and_fresh):
    train, fresh = train_and_fresh
    result = SmartML().run(train, SmartMLConfig(**FAST))
    withheld = fresh.copy()
    withheld.X[0, :3] = np.nan
    predictions = result.predict(withheld)
    assert predictions.shape == (fresh.n_instances,)


def test_predict_proba_normalised(train_and_fresh):
    train, fresh = train_and_fresh
    result = SmartML().run(train, SmartMLConfig(**FAST))
    proba = result.predict_proba(fresh)
    assert proba.shape == (fresh.n_instances, train.n_classes)
    assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)


def test_predict_through_ensemble(train_and_fresh):
    train, fresh = train_and_fresh
    result = SmartML().run(train, SmartMLConfig(ensemble=True, **FAST))
    assert result.ensemble is not None
    direct = result.predict(fresh)
    via_ensemble = result.predict(fresh, use_ensemble=True)
    assert via_ensemble.shape == direct.shape


def test_predict_consistent_with_feature_selection(train_and_fresh):
    train, fresh = train_and_fresh
    result = SmartML().run(train, SmartMLConfig(feature_selection_k=3, **FAST))
    predictions = result.predict(fresh)  # pipeline reduces to 3 columns itself
    assert predictions.shape == (fresh.n_instances,)


def test_predict_without_pipeline_raises():
    bare = SmartMLResult(
        dataset_name="x", best_algorithm="knn", best_config={},
        validation_accuracy=0.0, model=None,
    )
    ds = make_dataset(SyntheticSpec(name="d", n_instances=10, n_features=2,
                                    n_classes=2, seed=1))
    with pytest.raises(NotFittedError):
        bare.predict(ds)
