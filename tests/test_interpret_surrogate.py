"""Tests for the global surrogate-tree explanation."""

import numpy as np

from repro.classifiers import KNN, RandomForest
from repro.interpret import global_surrogate


def _axis_aligned_problem(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 3))
    y = (X[:, 0] > 0.2).astype(np.int64)
    return X, y


def test_surrogate_high_fidelity_on_simple_box():
    X, y = _axis_aligned_problem()
    model = RandomForest(ntree=20, seed=0).fit(X, y)
    explanation = global_surrogate(model, X, max_depth=2)
    assert explanation.fidelity > 0.9
    assert explanation.n_leaves <= 4


def test_surrogate_rules_mention_true_feature():
    X, y = _axis_aligned_problem()
    model = RandomForest(ntree=20, seed=0).fit(X, y)
    explanation = global_surrogate(model, X, feature_names=["alpha", "beta", "gamma"])
    rules = explanation.rules()
    assert rules
    assert any("alpha" in rule for rule in rules)


def test_surrogate_predict_matches_tree():
    X, y = _axis_aligned_problem(seed=2)
    model = KNN(k=5).fit(X, y)
    explanation = global_surrogate(model, X)
    predictions = explanation.predict(X)
    agreement = (predictions == model.predict(X)).mean()
    assert abs(agreement - explanation.fidelity) < 1e-9


def test_surrogate_fidelity_decreases_for_complex_boundary():
    rng = np.random.default_rng(3)
    X = rng.uniform(-1, 1, size=(400, 2))
    simple_y = (X[:, 0] > 0).astype(np.int64)
    xor_y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(np.int64)

    simple_model = KNN(k=7).fit(X, simple_y)
    xor_model = KNN(k=7).fit(X, xor_y)
    simple_expl = global_surrogate(simple_model, X, max_depth=1)
    xor_expl = global_surrogate(xor_model, X, max_depth=1)
    # Depth-1 tree explains an axis cut perfectly but cannot explain XOR.
    assert simple_expl.fidelity > 0.95
    assert xor_expl.fidelity < 0.8


def test_surrogate_describe_contains_fidelity_and_rules():
    X, y = _axis_aligned_problem(seed=4)
    model = KNN(k=3).fit(X, y)
    text = global_surrogate(model, X).describe()
    assert "fidelity" in text
    assert "=> class" in text


def test_surrogate_on_multiclass(multi_ds):
    model = RandomForest(ntree=10, seed=1).fit(
        multi_ds.X, multi_ds.y, n_classes=multi_ds.n_classes
    )
    explanation = global_surrogate(model, multi_ds.X, max_depth=3)
    assert 0.0 <= explanation.fidelity <= 1.0
    assert set(explanation.predict(multi_ds.X)) <= set(range(multi_ds.n_classes))
