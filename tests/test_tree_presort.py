"""Presorted breadth-first engine == seed recursive builder, node-for-node.

The engine's contract is exact: same splits, same thresholds, same counts,
same pre-order layout as ``FlatTree.from_node(build_tree(...))`` — across
criteria, instance weights, ``max_features``, ``min_bucket`` edge cases,
bootstrap subsampling, pruning, and the lockstep forest path.  Hypothesis
drives the space; a handful of deterministic tests pin the sharp edges.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classifiers import Bagging, RandomForest
from repro.classifiers.tree import (
    FlatRegressionTree,
    FlatTree,
    PresortedMatrix,
    TreeParams,
    build_tree,
    cost_complexity_prune,
    cost_complexity_prune_flat,
    draw_tree_seed,
    fit_flat_forest,
    fit_flat_regression_tree,
    fit_flat_tree,
    pessimistic_prune,
    pessimistic_prune_flat,
    share_presort,
    shared_presort_for,
)
from repro.evaluation.resampling import bootstrap_indices
from repro.hpo.surrogate import build_regression_tree_recursive


def assert_flat_equal(a, b, payload: str = "counts"):
    for name in ("feature", "threshold", "left", "right", "parent"):
        assert np.array_equal(getattr(a, name), getattr(b, name)), name
    assert np.array_equal(getattr(a, payload), getattr(b, payload)), payload


def _data(seed, with_ties=True):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 160))
    d = int(rng.integers(1, 7))
    k = int(rng.integers(2, 5))
    X = rng.normal(size=(n, d))
    if with_ties:
        X[:, 0] = np.round(X[:, 0], 1)  # duplicated values exercise ties
    y = rng.integers(0, k, size=n)
    return X, y, k


# ----------------------------------------------- engine == recursive builder
@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    depth=st.integers(min_value=1, max_value=12),
    criterion=st.sampled_from(["gini", "entropy", "gain_ratio"]),
    weighted=st.booleans(),
    subsample_features=st.booleans(),
    min_split=st.integers(min_value=2, max_value=8),
    min_bucket=st.integers(min_value=1, max_value=5),
)
def test_property_engine_matches_recursive(
    seed, depth, criterion, weighted, subsample_features, min_split, min_bucket
):
    X, y, k = _data(seed)
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0.1, 5.0, size=y.shape[0]) if weighted else None
    max_features = max(1, X.shape[1] // 2) if subsample_features else None
    params = TreeParams(
        criterion=criterion, max_depth=depth, min_split=min_split,
        min_bucket=min_bucket, max_features=max_features,
    )
    r1 = np.random.default_rng(seed + 1)
    r2 = np.random.default_rng(seed + 1)
    reference = FlatTree.from_node(build_tree(X, y, k, params, rng=r1, weights=weights), k)
    engine = fit_flat_tree(X, y, k, params, rng=r2, weights=weights)
    assert_flat_equal(reference, engine)
    # Both engines consumed the shared rng stream identically.
    assert r1.integers(1 << 30) == r2.integers(1 << 30)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    pruning=st.sampled_from(["cost_complexity", "pessimistic"]),
    strength=st.sampled_from([0.0001, 0.01, 0.05, 0.25, 0.45]),
    criterion=st.sampled_from(["gini", "gain_ratio"]),
)
def test_property_flat_pruning_matches_recursive(seed, pruning, strength, criterion):
    X, y, k = _data(seed)
    params = TreeParams(criterion=criterion, max_depth=10)
    root = build_tree(X, y, k, params)
    flat = fit_flat_tree(X, y, k, params)
    if pruning == "cost_complexity":
        cost_complexity_prune(root, cp=strength)
        pruned = cost_complexity_prune_flat(flat, cp=strength)
    else:
        pessimistic_prune(root, confidence=strength)
        pruned = pessimistic_prune_flat(flat, confidence=strength)
    assert_flat_equal(FlatTree.from_node(root, k), pruned)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    subsample_features=st.booleans(),
)
def test_property_bootstrap_subsample_matches_direct_fit(seed, subsample_features):
    """A presort derived by stable filter == fitting the sampled matrix.

    The reference fits ``X[sample]`` in the *original bootstrap order*;
    the engine fits the canonicalised (ascending, duplicates-adjacent)
    sample via the derived order — the trees must be node-for-node equal.
    """
    X, y, k = _data(seed)
    n = y.shape[0]
    rng = np.random.default_rng(seed + 7)
    sample = rng.integers(0, n, size=n)
    max_features = max(1, X.shape[1] // 2) if subsample_features else None
    params = TreeParams(criterion="gini", max_depth=12, max_features=max_features)
    r1 = np.random.default_rng(seed + 11)
    r2 = np.random.default_rng(seed + 11)
    reference = FlatTree.from_node(
        build_tree(X[sample], y[sample], k, params, rng=r1), k
    )
    presort = PresortedMatrix(X)
    boot, rows = presort.subsample(sample)
    engine = fit_flat_tree(boot.X, y[rows], k, params, rng=r2, presort=boot)
    assert_flat_equal(reference, engine)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_trees=st.integers(min_value=1, max_value=8),
    subsample_features=st.booleans(),
)
def test_property_lockstep_forest_matches_sequential(seed, n_trees, subsample_features):
    X, y, k = _data(seed)
    n = y.shape[0]
    max_features = max(1, X.shape[1] // 2) if subsample_features else None
    params = TreeParams(
        criterion="gini", max_depth=10, min_split=2, min_bucket=1,
        max_features=max_features,
    )
    r1 = np.random.default_rng(seed + 3)
    reference = []
    for _ in range(n_trees):
        sample = bootstrap_indices(n, r1)
        reference.append(
            FlatTree.from_node(build_tree(X[sample], y[sample], k, params, rng=r1), k)
        )
    r2 = np.random.default_rng(seed + 3)
    presort = PresortedMatrix(X)
    samples, seeds = [], []
    subsampling = max_features is not None and max_features < X.shape[1]
    for _ in range(n_trees):
        samples.append(bootstrap_indices(n, r2))
        if subsampling:
            seeds.append(draw_tree_seed(r2))
    engine = fit_flat_forest(
        presort, y, k, params, samples, tree_seeds=seeds if subsampling else None
    )
    assert len(engine) == n_trees
    for a, b in zip(reference, engine):
        assert_flat_equal(a, b)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    depth=st.integers(min_value=1, max_value=12),
    subsample_features=st.booleans(),
)
def test_property_regression_engine_matches_recursive(seed, depth, subsample_features):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 160))
    d = int(rng.integers(1, 7))
    X = rng.normal(size=(n, d))
    X[:, 0] = np.round(X[:, 0], 1)
    y = rng.normal(size=n)
    max_features = max(1, int(np.ceil(d * 0.7))) if subsample_features else None
    r1 = np.random.default_rng(seed + 5)
    r2 = np.random.default_rng(seed + 5)
    reference = FlatRegressionTree.from_node(
        build_regression_tree_recursive(
            X, y, max_depth=depth, min_split=4, min_bucket=2,
            max_features=max_features, rng=r1,
        )
    )
    engine = fit_flat_regression_tree(
        X, y, max_depth=depth, min_split=4, min_bucket=2,
        max_features=max_features, rng=r2,
    )
    assert_flat_equal(reference, engine, payload="values")


# --------------------------------------------------------------- edge cases
def test_single_instance_is_a_leaf():
    flat = fit_flat_tree(np.zeros((1, 2)), np.zeros(1, dtype=np.int64), 2, TreeParams())
    assert flat.n_nodes == 1 and flat.feature[0] == -1


def test_pure_node_not_split():
    X = np.arange(10, dtype=float).reshape(-1, 1)
    flat = fit_flat_tree(X, np.zeros(10, dtype=np.int64), 2, TreeParams())
    assert flat.n_nodes == 1


def test_constant_features_yield_leaf():
    X = np.ones((20, 3))
    y = np.tile([0, 1], 10).astype(np.int64)
    flat = fit_flat_tree(X, y, 2, TreeParams())
    assert flat.n_nodes == 1


def test_min_bucket_larger_than_half_blocks_splits():
    X, y, k = _data(5)
    params = TreeParams(min_bucket=y.shape[0])
    reference = FlatTree.from_node(build_tree(X, y, k, params), k)
    assert_flat_equal(reference, fit_flat_tree(X, y, k, params))


def test_min_impurity_decrease_matches_reference():
    X, y, k = _data(9)
    params = TreeParams(criterion="entropy", max_depth=8, min_impurity_decrease=0.05)
    reference = FlatTree.from_node(build_tree(X, y, k, params), k)
    assert_flat_equal(reference, fit_flat_tree(X, y, k, params))


def test_take_columns_presort_matches_direct():
    X, y, k = _data(12)
    if X.shape[1] < 2:
        return
    cols = np.array([X.shape[1] - 1, 0])
    params = TreeParams(criterion="gain_ratio", max_depth=8)
    reference = FlatTree.from_node(build_tree(X[:, cols], y, k, params), k)
    sub = PresortedMatrix(X).take_columns(cols)
    assert_flat_equal(reference, fit_flat_tree(sub.X, y, k, params, presort=sub))


# ---------------------------------------------------------- shared registry
def test_shared_presort_reused_and_released():
    X = np.random.default_rng(0).normal(size=(40, 3))
    handle = share_presort(X)
    assert shared_presort_for(X) is handle.presort()
    assert share_presort(X) is handle  # same registration, same handle
    y = np.random.default_rng(1).integers(0, 2, size=40)
    via_registry = fit_flat_tree(X, y, 2, TreeParams(max_depth=4))
    fresh = fit_flat_tree(X, y, 2, TreeParams(max_depth=4), presort=PresortedMatrix(X))
    assert_flat_equal(via_registry, fresh)
    del handle
    assert shared_presort_for(X) is None  # weak registry released the entry


def test_objective_registers_fold_presorts():
    from repro.classifiers import RPart
    from repro.hpo.objective import CrossValObjective

    rng = np.random.default_rng(3)
    X = rng.normal(size=(60, 4))
    y = rng.integers(0, 2, size=60)
    objective = CrossValObjective(lambda c: RPart(**c), X, y, n_classes=2, n_folds=2)
    for fold_X, _, _, _ in objective._fold_data:
        assert shared_presort_for(fold_X) is not None


# ------------------------------------------------- ensembles stay identical
@pytest.mark.parametrize("klass,kwargs", [
    (RandomForest, dict(ntree=12, seed=5)),
    (Bagging, dict(nbagg=6, seed=5)),
])
def test_ensembles_match_recursive_composition(klass, kwargs):
    rng = np.random.default_rng(21)
    X = rng.normal(size=(120, 5))
    y = rng.integers(0, 3, size=120)
    model = klass(**kwargs).fit(X, y)

    tree_rng = np.random.default_rng(5)
    if klass is RandomForest:
        params = TreeParams(criterion="gini", max_depth=40, min_split=2, min_bucket=1,
                            max_features=max(1, int(np.sqrt(5))))
        n_members = kwargs["ntree"]
    else:
        params = TreeParams(criterion="gini", max_depth=30, min_split=20, min_bucket=7)
        n_members = kwargs["nbagg"]
    for i in range(n_members):
        sample = bootstrap_indices(120, tree_rng)
        root = build_tree(
            X[sample], y[sample], 3, params,
            rng=tree_rng if klass is RandomForest else None,
        )
        if klass is Bagging:
            cost_complexity_prune(root, 0.01)
        assert_flat_equal(FlatTree.from_node(root, 3), model.trees_[i])
