"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import main

CSV = "a,b,label\n" + "\n".join(
    f"{i % 6},{(i * 5) % 7},{'x' if (i % 6) > 2 else 'y'}" for i in range(60)
)


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text(CSV)
    return path


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_datasets_lists_table4():
    code, text = _run(["datasets"])
    assert code == 0
    for key in ("abalone", "gisette", "kin8nm"):
        assert key in text


def test_bootstrap_then_nominate(tmp_path, csv_file):
    kb_path = tmp_path / "kb.jsonl"
    code, text = _run([
        "bootstrap", "--kb", str(kb_path), "--n", "2", "--configs", "1",
        "--max-instances", "80", "--quiet",
    ])
    assert code == 0
    assert "knowledge base ready: 2 datasets" in text

    code, text = _run([
        "nominate", "--dataset", str(csv_file), "--target", "label",
        "--kb", str(kb_path),
    ])
    assert code == 0
    assert "score=" in text


def test_nominate_empty_kb_exits_nonzero(csv_file):
    code, text = _run(["nominate", "--dataset", str(csv_file), "--target", "label"])
    assert code == 1
    assert "empty" in text


def test_run_on_file(csv_file, tmp_path):
    kb_path = tmp_path / "kb.jsonl"
    code, text = _run([
        "run", "--dataset", str(csv_file), "--target", "label",
        "--kb", str(kb_path), "--budget", "1.0", "--algorithms", "2",
        "--preprocess", "center", "scale",
    ])
    assert code == 0
    assert "recommended algorithm" in text
    # The run must have updated the persistent KB.
    code, text = _run([
        "nominate", "--dataset", str(csv_file), "--target", "label",
        "--kb", str(kb_path),
    ])
    assert code == 0


def test_run_json_output(csv_file):
    code, text = _run([
        "run", "--dataset", str(csv_file), "--target", "label",
        "--budget", "1.0", "--algorithms", "1", "--no-update", "--json",
    ])
    assert code == 0
    payload = json.loads(text)
    assert "best_algorithm" in payload
    assert payload["candidates"]


def test_run_builtin_dataset():
    code, text = _run([
        "run", "--dataset", "occupancy", "--budget", "1.0",
        "--algorithms", "1", "--no-update",
    ])
    assert code == 0
    assert "validation accuracy" in text


def test_run_missing_file_errors(tmp_path):
    code, _ = _run([
        "run", "--dataset", str(tmp_path / "nope.csv"), "--budget", "1.0",
    ])
    assert code == 2


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_submit_and_status_against_live_server(csv_file):
    from repro.api import SmartMLServer
    from repro.core import SmartML

    server = SmartMLServer(SmartML(), workers=1)
    server.serve_background()
    try:
        code, text = _run([
            "submit", "--dataset", str(csv_file), "--target", "label",
            "--port", str(server.port), "--budget", "2", "--algorithms", "2",
            "--config", '{"max_evals_per_algorithm": 2, "n_folds": 2, '
                        '"time_budget_s": null, "fallback_portfolio": ["knn", "rpart"]}',
            "--wait",
        ])
        assert code == 0
        assert "job 1 queued" in text
        assert "best:" in text

        code, text = _run(["status", "--port", str(server.port)])
        assert code == 0
        assert "done" in text

        code, text = _run(["status", "--port", str(server.port), "--job", "1"])
        assert code == 0
        detail = json.loads(text)
        assert detail["status"] == "done"
        assert detail["result"]["best_algorithm"] in ("knn", "rpart")
    finally:
        server.shutdown()


def test_status_with_no_jobs():
    from repro.api import SmartMLServer
    from repro.core import SmartML

    server = SmartMLServer(SmartML())
    server.serve_background()
    try:
        code, text = _run(["status", "--port", str(server.port)])
        assert code == 0
        assert "no experiment jobs" in text
    finally:
        server.shutdown()
