"""Tests for the Table-1 framework comparison registry."""

from repro.core import framework_cards, render_table1


def test_four_frameworks_in_order():
    cards = framework_cards()
    assert [c.name for c in cards] == ["SmartML", "Auto-Weka", "AutoSklearn", "TPOT"]


def test_smartml_column_derived_from_code():
    smartml = framework_cards()[0]
    assert smartml.n_algorithms == "15 classifiers"
    assert smartml.supports_ensembling
    assert smartml.uses_meta_learning
    assert smartml.meta_learning_kind == "incrementally updated KB"
    assert smartml.feature_preprocessing
    assert smartml.model_interpretability
    assert smartml.has_api


def test_paper_reported_competitor_facts():
    by_name = {c.name: c for c in framework_cards()}
    assert by_name["Auto-Weka"].n_algorithms == "27 classifiers"
    assert not by_name["Auto-Weka"].uses_meta_learning
    assert by_name["AutoSklearn"].meta_learning_kind == "static"
    assert not by_name["TPOT"].supports_ensembling
    assert "Genetic" in by_name["TPOT"].optimization


def test_only_smartml_offers_interpretability():
    cards = framework_cards()
    assert [c.model_interpretability for c in cards] == [True, False, False, False]


def test_render_contains_all_rows_and_columns():
    table = render_table1()
    for needle in (
        "SmartML", "Auto-Weka", "AutoSklearn", "TPOT",
        "Language", "API", "Optimization Procedure", "Number of Algorithms",
        "Support Ensembling", "Use Meta-Learning", "Feature preprocessing",
        "Model Interpretability",
    ):
        assert needle in table
