"""Micro-batching correctness under adversarial concurrency.

Three properties, in rising order of subtlety:

1. *row ownership* — N threads firing rows at the same model each get
   exactly their own predictions back, order preserved, no matter how the
   scheduler interleaves their arrivals;
2. *error isolation* — a request that poisons a coalesced pass fails
   alone; its batch-mates still get answers;
3. *bit-identity* — for row-local families, a row predicted inside a
   coalesced batch carries exactly the same bits as the same row predicted
   solo (the pad-to-gemm trick in the executor is what makes this hold for
   single-row requests too).
"""

import threading
import time

import numpy as np
import pytest

from repro.classifiers import CLASSIFIER_REGISTRY
from repro.core.result import SmartMLResult
from repro.data import SyntheticSpec, make_dataset
from repro.preprocess import Imputer, Pipeline
from repro.serving import ModelRegistry, PredictionBatcher
from repro.serving.batcher import BatchRequestError
from repro.serving.registry import RegistryError

#: Families whose predict path treats every row independently — for these
#: the batched == unbatched guarantee is *bitwise*.  LMT is deliberately
#: absent: it regroups rows by leaf and fits nothing per row, so its
#: outputs are deterministic per batch but not stable across batch
#: compositions (see docs/serving.md).
ROW_LOCAL = {
    "random_forest": {"ntree": 5},
    "knn": {"k": 3},
    "svm": {},
    "naive_bayes": {},
    "lda": {},
}


@pytest.fixture(scope="module")
def served():
    train = make_dataset(
        SyntheticSpec(name="batch-train", n_instances=90, n_features=6,
                      n_classes=3, class_sep=2.0, seed=43)
    )
    fresh = make_dataset(
        SyntheticSpec(name="batch-fresh", n_instances=64, n_features=6,
                      n_classes=3, class_sep=2.0, seed=47)
    )
    pipeline = Pipeline([Imputer()])
    prepared = pipeline.fit_transform(train)
    registry = ModelRegistry()
    for name, params in ROW_LOCAL.items():
        model = CLASSIFIER_REGISTRY[name](**params)
        model.fit(prepared.X, prepared.y, n_classes=train.n_classes)
        result = SmartMLResult(
            dataset_name=train.name, best_algorithm=name, best_config=dict(params),
            validation_accuracy=0.0, model=model, pipeline=pipeline,
        )
        registry.register(name, result, dataset=train)
    return registry, fresh


def _hammer(batcher, jobs, start_jitter=0.0005):
    """Run callables on their own threads with slightly staggered starts."""
    barrier = threading.Barrier(len(jobs))
    outcomes: list = [None] * len(jobs)

    def run(i, fn):
        barrier.wait()
        if start_jitter:
            time.sleep((i % 4) * start_jitter)  # adversarial interleaving
        try:
            outcomes[i] = ("ok", fn())
        except Exception as exc:
            outcomes[i] = ("err", exc)

    threads = [threading.Thread(target=run, args=(i, fn)) for i, fn in enumerate(jobs)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return outcomes


def test_each_thread_gets_exactly_its_rows(served):
    registry, fresh = served
    batcher = PredictionBatcher(registry, window_s=0.01)
    try:
        # 16 threads, uneven slice sizes, all against one model.
        slices, cursor, size = [], 0, 1
        while cursor < fresh.n_instances:
            slices.append((cursor, min(cursor + size, fresh.n_instances)))
            cursor += size
            size = size % 5 + 1
        expected = registry.load("knn").predict_rows(fresh.X, proba=True)
        outcomes = _hammer(
            batcher,
            [
                (lambda lo=lo, hi=hi: batcher.predict("knn", fresh.X[lo:hi], proba=True))
                for lo, hi in slices
            ],
        )
        for (lo, hi), (status, value) in zip(slices, outcomes):
            assert status == "ok"
            assert value.shape == (hi - lo, 3)
            assert np.array_equal(value, expected[lo:hi]), (
                f"rows [{lo}:{hi}] came back wrong under concurrency"
            )
        stats = batcher.stats()
        assert stats.requests == len(slices)
        assert stats.rows == fresh.n_instances
    finally:
        batcher.shutdown()


@pytest.mark.parametrize("family", sorted(ROW_LOCAL))
def test_batched_equals_unbatched_bit_for_bit(served, family):
    registry, fresh = served
    batcher = PredictionBatcher(registry, window_s=0.01)
    try:
        chunks = [fresh.X[i : i + 3] for i in range(0, 24, 3)] + [fresh.X[30:31]]
        # Solo reference: each chunk through its own pass, no coalescing.
        solo = [batcher.predict(family, c, proba=True, coalesce=False) for c in chunks]
        outcomes = _hammer(
            batcher,
            [(lambda c=c: batcher.predict(family, c, proba=True)) for c in chunks],
        )
        for reference, (status, value) in zip(solo, outcomes):
            assert status == "ok"
            assert np.array_equal(reference, value), (
                f"{family}: batched proba differs from solo proba"
            )
        assert batcher.stats().coalesced_requests > 0, (
            "test never actually coalesced; weaken the window assumptions"
        )
    finally:
        batcher.shutdown()


def test_malformed_request_rejected_before_joining_a_batch(served):
    registry, fresh = served
    batcher = PredictionBatcher(registry, window_s=0.01)
    try:
        jobs = [lambda: batcher.predict("lda", fresh.X[:4])] * 3
        jobs.insert(1, lambda: batcher.predict("lda", fresh.X[:4, :2]))  # wrong width
        jobs.insert(3, lambda: batcher.predict("lda", [["a", "b"]]))  # not numeric
        outcomes = _hammer(batcher, jobs)
        statuses = [status for status, _ in outcomes]
        assert statuses.count("ok") == 3
        assert statuses.count("err") == 2
        for status, value in outcomes:
            if status == "err":
                assert isinstance(value, BatchRequestError)
        assert batcher.stats().failed_requests == 0  # rejected at the door
    finally:
        batcher.shutdown()


def test_poison_row_in_coalesced_batch_fails_alone(served):
    registry, fresh = served
    batcher = PredictionBatcher(registry, window_s=0.05)
    try:
        # inf passes the batcher's shape checks and survives imputation
        # (which only fills NaN), then detonates at the model's check_X.
        poison = fresh.X[:2].copy()
        poison[0, 0] = np.inf
        healthy = [fresh.X[4:8], fresh.X[8:10], fresh.X[10:15]]
        expected = [
            batcher.predict("naive_bayes", rows, coalesce=False) for rows in healthy
        ]
        jobs = [(lambda r=r: batcher.predict("naive_bayes", r)) for r in healthy]
        jobs.insert(1, lambda: batcher.predict("naive_bayes", poison))
        outcomes = _hammer(batcher, jobs, start_jitter=0.0)
        errors = [value for status, value in outcomes if status == "err"]
        oks = [value for status, value in outcomes if status == "ok"]
        assert len(errors) == 1, "exactly the poisoned request must fail"
        assert len(oks) == 3
        for reference, value in zip(expected, oks):
            assert np.array_equal(reference, value)
        stats = batcher.stats()
        assert stats.isolation_reruns >= 1
        assert stats.failed_requests == 1
    finally:
        batcher.shutdown()


def test_zero_window_still_coalesces_backlog(served):
    registry, fresh = served
    batcher = PredictionBatcher(registry, window_s=0.0)
    try:
        outcomes = _hammer(
            batcher,
            [
                (lambda i=i: batcher.predict("lda", fresh.X[i : i + 2]))
                for i in range(0, 40, 2)
            ],
            start_jitter=0.0,
        )
        assert all(status == "ok" for status, _ in outcomes)
        # No latency floor, but whatever piled up while a pass ran must
        # still have been taken together at least once in 20 requests.
        assert batcher.stats().batches <= batcher.stats().requests
    finally:
        batcher.shutdown()


def test_max_batch_rows_respected(served):
    registry, fresh = served
    batcher = PredictionBatcher(registry, window_s=0.05, max_batch_rows=8)
    try:
        outcomes = _hammer(
            batcher,
            [(lambda i=i: batcher.predict("knn", fresh.X[i : i + 5])) for i in range(6)],
        )
        assert all(status == "ok" for status, _ in outcomes)
        assert batcher.stats().max_batch_rows <= 8
    finally:
        batcher.shutdown()


def test_different_models_never_share_a_batch(served):
    registry, fresh = served
    batcher = PredictionBatcher(registry, window_s=0.02)
    try:
        expected = {
            name: registry.load(name).predict_rows(fresh.X[:6], proba=True)
            for name in ("knn", "lda", "naive_bayes")
        }
        jobs = []
        for name in ("knn", "lda", "naive_bayes") * 3:
            jobs.append(lambda n=name: (n, batcher.predict(n, fresh.X[:6], proba=True)))
        outcomes = _hammer(batcher, jobs)
        for status, value in outcomes:
            assert status == "ok"
            name, proba = value
            assert np.array_equal(proba, expected[name])
    finally:
        batcher.shutdown()


def test_shutdown_fails_pending_and_rejects_new(served):
    registry, fresh = served
    batcher = PredictionBatcher(registry, window_s=0.01)
    batcher.shutdown()
    with pytest.raises(RegistryError, match="shut down"):
        batcher.predict("knn", fresh.X[:2])
    batcher.shutdown()  # idempotent
