"""Unit + property tests for the parameter-space DSL."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.hpo import Categorical, Condition, Float, Integer, ParamSpace


def _space() -> ParamSpace:
    return ParamSpace([
        Categorical("kernel", ("a", "b", "c")),
        Integer("k", 1, 50, log=True),
        Float("c", 0.01, 100.0, log=True),
        Float("coef", -1.0, 1.0),
    ])


def _conditional() -> ParamSpace:
    return ParamSpace([
        Categorical("algo", ("x", "y")),
        Integer("x_param", 1, 10, condition=Condition("algo", ("x",))),
        Float("y_param", 0.0, 1.0, condition=Condition("algo", ("y",))),
    ])


def test_default_config_uses_defaults():
    config = _space().default_config()
    assert config["kernel"] == "a"
    assert 1 <= config["k"] <= 50


def test_sample_within_bounds(rng):
    space = _space()
    for _ in range(100):
        config = space.sample(rng)
        space.validate(config)


def test_counts():
    space = _space()
    assert space.n_categorical() == 1
    assert space.n_numerical() == 3
    assert len(space) == 4


def test_neighbor_changes_one_param(rng):
    space = _space()
    config = space.default_config()
    changed = 0
    for _ in range(50):
        neighbor = space.neighbor(config, rng)
        space.validate(neighbor)
        diffs = [k for k in config if config[k] != neighbor[k]]
        assert len(diffs) <= 1
        changed += bool(diffs)
    assert changed > 25  # neighbours usually differ


def test_encode_in_unit_interval():
    space = _space()
    vec = space.encode(space.default_config())
    assert vec.shape == (4,)
    assert (vec >= -1e-9).all() and (vec <= 1 + 1e-9).all()


def test_encode_inactive_is_minus_one(rng):
    space = _conditional()
    config = {"algo": "x", "x_param": 5}
    vec = space.encode(config)
    assert vec[2] == -1.0  # y_param inactive


def test_conditional_sampling_respects_activity(rng):
    space = _conditional()
    for _ in range(50):
        config = space.sample(rng)
        if config["algo"] == "x":
            assert "x_param" in config and "y_param" not in config
        else:
            assert "y_param" in config and "x_param" not in config


def test_conditional_neighbor_switches_branch_cleanly(rng):
    space = _conditional()
    config = {"algo": "x", "x_param": 3}
    for _ in range(50):
        neighbor = space.neighbor(config, rng)
        space.validate(neighbor)


def test_validate_rejects_out_of_range():
    space = _space()
    config = space.default_config()
    config["k"] = 999
    with pytest.raises(ConfigurationError):
        space.validate(config)


def test_validate_rejects_extra_keys():
    space = _space()
    config = space.default_config()
    config["mystery"] = 1
    with pytest.raises(ConfigurationError):
        space.validate(config)


def test_validate_rejects_missing_keys():
    space = _space()
    config = space.default_config()
    del config["k"]
    with pytest.raises(ConfigurationError):
        space.validate(config)


def test_complete_fills_missing_with_defaults():
    space = _space()
    config = space.complete({"kernel": "b"})
    space.validate(config)
    assert config["kernel"] == "b"


def test_complete_rejects_invalid_partial():
    with pytest.raises(ConfigurationError):
        _space().complete({"k": -3})


def test_config_key_stable_under_ordering():
    space = _space()
    a = {"kernel": "a", "k": 2, "c": 1.0, "coef": 0.0}
    b = {"coef": 0.0, "c": 1.0, "k": 2, "kernel": "a"}
    assert space.config_key(a) == space.config_key(b)


def test_duplicate_names_rejected():
    with pytest.raises(ConfigurationError):
        ParamSpace([Integer("x", 1, 2), Float("x", 0.0, 1.0)])


def test_condition_on_unknown_parent_rejected():
    with pytest.raises(ConfigurationError):
        ParamSpace([Integer("x", 1, 2, condition=Condition("ghost", (1,)))])


def test_integer_log_requires_positive_low():
    with pytest.raises(ConfigurationError):
        Integer("x", 0, 10, log=True)


def test_float_log_requires_positive_low():
    with pytest.raises(ConfigurationError):
        Float("x", 0.0, 1.0, log=True)


def test_categorical_empty_choices_rejected():
    with pytest.raises(ConfigurationError):
        Categorical("x", ())


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_samples_always_validate(seed):
    rng = np.random.default_rng(seed)
    space = _conditional()
    config = space.sample(rng)
    space.validate(config)
    neighbor = space.neighbor(config, rng)
    space.validate(neighbor)
    vec = space.encode(config)
    assert vec.shape == (3,)


@settings(max_examples=50, deadline=None)
@given(
    low=st.integers(min_value=1, max_value=50),
    span=st.integers(min_value=0, max_value=100),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_integer_bounds_hold(low, span, seed):
    rng = np.random.default_rng(seed)
    param = Integer("x", low, low + span, log=True)
    for _ in range(10):
        value = param.sample(rng)
        assert low <= value <= low + span
        encoded = param.encode(value)
        assert -1e-9 <= encoded <= 1 + 1e-9
