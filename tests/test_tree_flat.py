"""Flat-engine equivalence: the vectorized tree path must match the
recursive reference bit-for-bit, and parallel tuning must match sequential.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classifiers import Bagging, RandomForest
from repro.classifiers.tree import (
    FlatTree,
    TreeParams,
    build_tree,
    cost_complexity_prune,
    count_leaves,
    pessimistic_prune,
    tree_apply,
    tree_predict_proba,
)
from repro.core import SmartML, SmartMLConfig
from repro.data import SyntheticSpec, make_dataset
from repro.evaluation.resampling import bootstrap_indices


# ------------------------------------------------- flat vs recursive trees
@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    depth=st.integers(min_value=1, max_value=8),
    criterion=st.sampled_from(["gini", "entropy", "gain_ratio"]),
    pruning=st.sampled_from(["none", "cost_complexity", "pessimistic"]),
    weighted=st.booleans(),
)
def test_property_flat_matches_recursive(seed, depth, criterion, pruning, weighted):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(20, 150))
    d = int(rng.integers(1, 6))
    k = int(rng.integers(2, 5))
    X = rng.normal(size=(n, d))
    X[:, 0] = np.round(X[:, 0], 1)  # duplicated values exercise ties
    y = rng.integers(0, k, size=n)
    weights = rng.uniform(0.1, 5.0, size=n) if weighted else None

    root = build_tree(X, y, k, TreeParams(criterion=criterion, max_depth=depth), weights=weights)
    if pruning == "cost_complexity":
        cost_complexity_prune(root, cp=0.05)
    elif pruning == "pessimistic":
        pessimistic_prune(root, confidence=0.25)

    flat = FlatTree.from_node(root, k)
    X_query = rng.normal(size=(50, d))
    assert np.array_equal(
        flat.predict_proba(X_query), tree_predict_proba(root, X_query, k)
    )


def test_flat_apply_matches_recursive_leaves():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(120, 4))
    y = rng.integers(0, 3, size=120)
    root = build_tree(X, y, 3, TreeParams(max_depth=6))
    flat = FlatTree.from_node(root, 3)

    idx = flat.apply(X)
    leaves = tree_apply(root, X)
    for i, leaf in enumerate(leaves):
        assert np.array_equal(flat.counts[idx[i]], leaf.counts)
    assert (flat.feature[idx] == -1).all()


def test_flat_node_count_and_leaves():
    rng = np.random.default_rng(4)
    X = rng.normal(size=(200, 3))
    y = (X[:, 0] > 0).astype(np.int64)
    root = build_tree(X, y, 2, TreeParams(max_depth=5))
    flat = FlatTree.from_node(root, 2)
    assert int((flat.feature < 0).sum()) == count_leaves(root)
    # pre-order: node 0 is the root, children indices point forward
    internal = np.flatnonzero(flat.feature >= 0)
    assert (flat.left[internal] > internal).all() or internal.size == 0


def test_flat_single_leaf_tree():
    X = np.ones((10, 2))
    y = np.zeros(10, dtype=np.int64)
    root = build_tree(X, y, 2, TreeParams())
    flat = FlatTree.from_node(root, 2)
    assert flat.n_nodes == 1
    proba = flat.predict_proba(np.zeros((5, 2)))
    assert np.array_equal(proba, tree_predict_proba(root, np.zeros((5, 2)), 2))


def test_flat_boosted_weighted_tree_matches():
    # AdaBoost-style: heavily non-uniform weights from a previous round.
    rng = np.random.default_rng(9)
    X = rng.normal(size=(150, 3))
    y = rng.integers(0, 2, size=150)
    weights = np.exp(rng.normal(size=150))
    root = build_tree(X, y, 2, TreeParams(max_depth=3, min_bucket=2), weights=weights)
    pessimistic_prune(root, 0.25)
    flat = FlatTree.from_node(root, 2)
    assert np.array_equal(flat.predict_proba(X), tree_predict_proba(root, X, 2))


@pytest.mark.parametrize("klass,kwargs", [
    (RandomForest, dict(ntree=10, seed=5)),
    (Bagging, dict(nbagg=8, seed=5)),
])
def test_forest_matches_recursive_composition(klass, kwargs):
    """Ensemble output equals the recursive reference rebuilt tree by tree."""
    rng = np.random.default_rng(21)
    X = rng.normal(size=(120, 5))
    y = rng.integers(0, 3, size=120)
    model = klass(**kwargs).fit(X, y)

    reference = np.zeros((X.shape[0], 3))
    if klass is RandomForest:
        tree_rng = np.random.default_rng(5)
        params = TreeParams(
            criterion="gini", max_depth=40, min_split=2, min_bucket=1,
            max_features=max(1, int(np.sqrt(5))),
        )
        for _ in range(10):
            sample = bootstrap_indices(120, tree_rng)
            root = build_tree(X[sample], y[sample], 3, params, rng=tree_rng)
            reference += tree_predict_proba(root, X, 3)
        reference /= 10
    else:
        tree_rng = np.random.default_rng(5)
        params = TreeParams(criterion="gini", max_depth=30, min_split=20, min_bucket=7)
        for _ in range(8):
            sample = bootstrap_indices(120, tree_rng)
            root = build_tree(X[sample], y[sample], 3, params)
            cost_complexity_prune(root, 0.01)
            reference += tree_predict_proba(root, X, 3)
        reference /= 8

    assert np.array_equal(model.predict_proba(X), reference)


# ------------------------------------------------- parallel vs sequential
def _result_fingerprint(result):
    return (
        result.best_algorithm,
        repr(sorted(result.best_config.items())),
        result.validation_accuracy,
        [(c.algorithm, c.cv_error, c.validation_accuracy, repr(sorted(c.best_config.items())))
         for c in result.candidates],
    )


def test_parallel_tuning_matches_sequential():
    ds = make_dataset(
        SyntheticSpec(name="par", n_instances=90, n_features=5, n_classes=2,
                      class_sep=2.0, seed=33)
    )
    base = dict(
        time_budget_s=None,
        max_evals_per_algorithm=2,
        n_folds=2,
        fallback_portfolio=["rpart", "j48", "naive_bayes"],
        update_kb=False,
        seed=11,
    )
    sequential = SmartML().run(ds, SmartMLConfig(n_jobs=1, **base))
    parallel = SmartML().run(ds, SmartMLConfig(n_jobs=3, **base))
    assert _result_fingerprint(sequential) == _result_fingerprint(parallel)


def test_n_jobs_validation():
    from repro.exceptions import ConfigurationError
    with pytest.raises(ConfigurationError):
        SmartMLConfig(n_jobs=0)


def test_n_jobs_roundtrips_through_dict():
    config = SmartMLConfig(n_jobs=4)
    assert SmartMLConfig.from_dict(config.to_dict()).n_jobs == 4
